package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"runtime"
	"sync"
	"time"

	"ichannels/internal/engine"
	"ichannels/internal/scenario"
	"ichannels/internal/sweep"
)

// CodeInvalidSweep is the structured error code for a rejected sweep
// spec.
const CodeInvalidSweep = "invalid_sweep"

// MaxSweepCellsPerRequest bounds how many cells one POST /v1/sweeps may
// run — the grid-shaped sibling of MaxBatchScenarios. A spec may raise
// its own max_cells to the scenario package's hard limit for CLI/Go
// use, but one HTTP request cannot monopolize a shared server with a
// 65k-cell grid.
const MaxSweepCellsPerRequest = 4096

func (s *Server) v1SweepSchema(w http.ResponseWriter, r *http.Request) {
	if !methodOnly(w, r, http.MethodGet) {
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(scenario.SweepSchemaJSON())
}

// sweepLine is one NDJSON line of a sweep response — the same framing
// as sweep.CellLine, with the error carried as a structured envelope.
// Cached marks a result served from the in-memory cache or the durable
// store. Exactly one of Error and Result is set.
type sweepLine struct {
	Index     int               `json:"index"`
	Name      string            `json:"name,omitempty"`
	Axes      map[string]string `json:"axes"`
	Hash      string            `json:"hash"`
	Seed      int64             `json:"seed"`
	Pass      int               `json:"pass,omitempty"`
	Cached    bool              `json:"cached"`
	ElapsedUS float64           `json:"elapsed_us"`
	Error     *errorBody        `json:"error,omitempty"`
	Result    *scenario.Result  `json:"result,omitempty"`
}

// sweepItem carries one cell through the serving pipeline. hash is the
// cell spec's content hash, computed once in the producer and reused
// for both the cache key and the wire line.
type sweepItem struct {
	cell   scenario.Cell
	hash   string
	seed   int64
	ent    *cacheEntry
	cached bool
}

// sweepWindow bounds how many cells may be past the producer (entry
// published, compute dispatched) but not yet written. Grid size never
// enters the bound — that is the serving side of the streaming
// contract asserted by engine.TestStreamBoundedMemory.
func (s *Server) sweepWindow() int {
	n := runtime.GOMAXPROCS(0)
	if s.sem != nil {
		n = cap(s.sem)
	}
	w := 2 * n
	if w < 4 {
		w = 4
	}
	if w > 64 {
		w = 64
	}
	return w
}

// v1Sweeps expands a sweep spec and streams one NDJSON line per cell,
// in expansion order, followed by a final aggregate envelope
// ({"aggregate": …}) whose bytes match `ichannels sweep run` for the
// same spec and seed. Every cell shares the server-wide
// (scenario hash, seed) single-flight cache, so re-posting a sweep —
// or posting a sweep that overlaps earlier scenario requests — recomputes
// nothing.
func (s *Server) v1Sweeps(w http.ResponseWriter, r *http.Request) {
	if !methodOnly(w, r, http.MethodPost) {
		return
	}
	if !requireJSON(w, r) {
		return
	}
	querySeed, seedSet, err := parseSeed(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "%v", err)
		return
	}
	if seedSet && querySeed < 0 {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "seed must be non-negative, got %d", querySeed)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "reading body: %v", err)
		return
	}
	if len(body) > maxBodyBytes {
		writeError(w, http.StatusRequestEntityTooLarge, CodeTooLarge,
			"request body exceeds %d bytes", maxBodyBytes)
		return
	}
	sw, err := scenario.ParseSweep(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "decoding sweep: %v (see /v1/sweeps/schema)", err)
		return
	}
	nsw := sw.Normalized()
	// One pass validates the structure and every cell, and yields the
	// post-filter size for the per-request limit.
	cells, err := nsw.CountCells()
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidSweep, "%v", err)
		return
	}
	if cells > MaxSweepCellsPerRequest {
		writeError(w, http.StatusBadRequest, CodeBadRequest,
			"sweep expands to %d cells, above the per-request limit of %d (split the grid or run it via the CLI)",
			cells, MaxSweepCellsPerRequest)
		return
	}
	baseSeed := int64(scenario.DefaultSeed)
	if seedSet && querySeed != 0 {
		baseSeed = querySeed
	}
	if nsw.Refine != nil {
		s.v1SweepsRefined(w, r, nsw, baseSeed)
		return
	}
	it, err := nsw.Cells()
	if err != nil {
		// Unreachable after CountCells; keep the 400 for safety.
		writeError(w, http.StatusBadRequest, CodeInvalidSweep, "%v", err)
		return
	}

	// Producer: expand lazily, publish cache entries, dispatch compute.
	// The bounded channel is the back-pressure that keeps the number of
	// in-flight cells O(window), never O(grid).
	items := make(chan sweepItem, s.sweepWindow())
	ctx := r.Context()
	go func() {
		defer close(items)
		for {
			cell, ok, err := it.Next()
			if err != nil || !ok {
				// err is unreachable post-Validate; ending the stream
				// early is the safe degradation.
				return
			}
			seed := cell.Scenario.Seed
			if seed == 0 {
				seed = engine.DeriveScenarioSeed(baseSeed, cell.Scenario)
			}
			hash := cell.Scenario.Hash()
			key := cacheKey{Hash: hash, Seed: seed}
			ent, cached := s.entry(key)
			n := cell.Scenario
			go s.compute(key, ent, func() (*scenario.Result, error) {
				return s.runScenarioIsolated(r, n, seed)
			})
			select {
			case items <- sweepItem{cell: cell, hash: hash, seed: seed, ent: ent, cached: cached}:
			case <-ctx.Done():
				return
			}
		}
	}()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	agg := sweep.NewAggregator(nsw.EffectiveGroupBy())
	for it := range items {
		select {
		case <-it.ent.ready:
		case <-ctx.Done():
			// Client went away; in-flight computations still complete
			// into the cache for the next request.
			return
		}
		line := sweepLine{
			Index: it.cell.Index, Name: it.cell.Scenario.Name, Axes: it.cell.Axes,
			Hash: it.hash, Seed: it.seed, Cached: it.ent.served(it.cached),
			ElapsedUS: float64(it.ent.elapsed) / float64(time.Microsecond),
		}
		if it.ent.err != nil {
			line.Error = errBody(CodeRunFailed, "%s (seed %d): %v", it.cell.Scenario.Describe(), it.seed, it.ent.err)
		} else {
			line.Result = it.ent.result
		}
		agg.Add(it.cell.Axes, it.ent.result, it.ent.err)
		if err := enc.Encode(line); err != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	sweep.WriteAggregateLine(w, agg.Table(nsw.Hash(), baseSeed))
	if flusher != nil {
		flusher.Flush()
	}
}

// refinedParallel sizes the refinement controller's worker pool: the
// simulation semaphore bounds real concurrency anyway, so match it.
func (s *Server) refinedParallel() int {
	if s.sem != nil {
		return cap(s.sem)
	}
	return runtime.GOMAXPROCS(0)
}

// v1SweepsRefined streams an adaptive sweep: one NDJSON pass-marker
// line per refinement pass, the pass's cell lines in the controller's
// deterministic hash order, and a final aggregate envelope that records
// cells computed vs the dense-grid equivalent — framing and bytes
// identical to `ichannels sweep run -ndjson` for the same spec and
// seed. Every cell still goes through the server-wide (hash, seed)
// single-flight cache (and the durable store underneath it), so a
// refined sweep that overlaps earlier requests recomputes nothing.
func (s *Server) v1SweepsRefined(w http.ResponseWriter, r *http.Request, nsw scenario.Sweep, baseSeed int64) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)

	// The controller runs cells on engine workers; each worker resolves
	// its cell through the server cache. served records which keys were
	// answered from memory or the durable tier — written on the worker
	// goroutine, read on the emitter goroutine, hence the sync.Map.
	var served sync.Map
	runFn := func(ctx context.Context, n scenario.Scenario, seed int64) (*scenario.Result, error) {
		key := cacheKey{Hash: n.Hash(), Seed: seed}
		ent, cached := s.entry(key)
		s.compute(key, ent, func() (*scenario.Result, error) {
			return s.runScenarioIsolated(r, n, seed)
		})
		<-ent.ready
		if ent.served(cached) {
			served.Store(key, true)
		}
		return ent.result, ent.err
	}
	res, err := sweep.Run(r.Context(), nsw, sweep.Options{
		BaseSeed: baseSeed,
		Parallel: s.refinedParallel(),
		Run:      runFn,
		OnPass: func(p sweep.PassStats) error {
			if err := sweep.WritePassLine(w, p); err != nil {
				return err
			}
			if flusher != nil {
				flusher.Flush()
			}
			return nil
		},
		OnCell: func(o sweep.CellOutcome) error {
			_, cached := served.Load(cacheKey{Hash: o.Hash, Seed: o.Seed})
			line := sweepLine{
				Index: o.Cell.Index, Name: o.Cell.Scenario.Name, Axes: o.Cell.Axes,
				Hash: o.Hash, Seed: o.Seed, Pass: o.Pass, Cached: cached,
				ElapsedUS: float64(o.Elapsed) / float64(time.Microsecond),
			}
			if o.Err != nil {
				line.Error = errBody(CodeRunFailed, "%s (seed %d): %v", o.Cell.Scenario.Describe(), o.Seed, o.Err)
			} else {
				line.Result = o.Result
			}
			if err := enc.Encode(line); err != nil {
				return err
			}
			if flusher != nil {
				flusher.Flush()
			}
			return nil
		},
	})
	if err != nil {
		// The stream has started; ending it early (client disconnect,
		// write failure) is the safe degradation — in-flight cells
		// still complete into the cache for the next request.
		return
	}
	res.WriteAggregateLine(w)
	if flusher != nil {
		flusher.Flush()
	}
}
