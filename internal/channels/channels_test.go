package channels

import (
	"math/rand"
	"testing"

	"ichannels/internal/model"
	"ichannels/internal/soc"
	"ichannels/internal/units"
)

func machine(t *testing.T, p model.Processor, freq units.Hertz, cores int, seed int64) *soc.Machine {
	t.Helper()
	m, err := soc.New(soc.Options{Processor: p, RequestedFreq: freq, Cores: cores, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func randomBits(n int, seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	out := make([]int, n)
	for i := range out {
		out[i] = rng.Intn(2)
	}
	return out
}

func TestRetire(t *testing.T) {
	m := machine(t, model.CannonLake8121U(), 2.2*units.GHz, 1, 1)
	r, err := NewRetire(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Transmit([]int{1}); err == nil {
		t.Fatal("uncalibrated transmit accepted")
	}
	gap, err := r.Calibrate(6)
	if err != nil {
		t.Fatal(err)
	}
	// The contended measurement takes ~2× the uncontended cycles: the gap
	// is on the order of the uncontended reading itself (~6400 cycles).
	if gap < 3000 {
		t.Fatalf("contention gap %.0f cycles, want ≫0", gap)
	}
	res, err := r.Transmit(randomBits(64, 2))
	if err != nil {
		t.Fatal(err)
	}
	if res.BER != 0 {
		t.Fatalf("noise-free retire BER = %g (errors=%d)", res.BER, res.SymbolErrors)
	}
	// 1 bit per 20 µs slot = 50 kb/s raw.
	if res.ThroughputBPS < 45000 || res.ThroughputBPS > 55000 {
		t.Fatalf("throughput %.0f b/s, want ≈50000", res.ThroughputBPS)
	}
}

func TestRetireNeedsSMT(t *testing.T) {
	m := machine(t, model.CoffeeLake9700K(), 3.6*units.GHz, 2, 1)
	if _, err := NewRetire(m); err == nil {
		t.Fatal("retire channel on an SMT-less processor accepted")
	}
}

func TestRetireAcrossFrequencies(t *testing.T) {
	// The counter-based decode is frequency-independent: the same fixed
	// work contends the same way at any clock.
	for _, f := range []units.Hertz{1.4 * units.GHz, 3.5 * units.GHz} {
		m := machine(t, model.Haswell4770K(), f, 1, 1)
		r, err := NewRetire(m)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.Calibrate(4); err != nil {
			t.Fatalf("at %v: %v", f, err)
		}
		res, err := r.Transmit(randomBits(32, 3))
		if err != nil {
			t.Fatalf("at %v: %v", f, err)
		}
		if res.BER != 0 {
			t.Fatalf("at %v: BER = %g", f, res.BER)
		}
	}
}

func TestClockMod(t *testing.T) {
	m := machine(t, model.CannonLake8121U(), 2.2*units.GHz, 2, 1)
	c, err := NewClockMod(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Transmit([]int{1}); err == nil {
		t.Fatal("uncalibrated transmit accepted")
	}
	gap, err := c.Calibrate(4)
	if err != nil {
		t.Fatal(err)
	}
	// Quarter duty makes the fixed loop take 4× the TSC cycles: the gap
	// is ~3× the unmodulated reading (~20000 cycles).
	if gap < 10000 {
		t.Fatalf("duty gap %.0f cycles, want ≫0", gap)
	}
	res, err := c.Transmit(randomBits(32, 4))
	if err != nil {
		t.Fatal(err)
	}
	if res.BER != 0 {
		t.Fatalf("noise-free clockmod BER = %g (errors=%d)", res.BER, res.SymbolErrors)
	}
	// 1 bit per 120 µs window ≈ 8.3 kb/s raw.
	if res.ThroughputBPS < 8000 || res.ThroughputBPS > 8700 {
		t.Fatalf("throughput %.0f b/s, want ≈8333", res.ThroughputBPS)
	}
	// The run must leave the machine unmodulated for whatever comes next.
	for _, core := range m.Cores {
		if core.DutyCycle() != 1 {
			t.Fatalf("core %d left at duty %g", core.ID(), core.DutyCycle())
		}
	}
}

func TestClockModNeedsTwoCores(t *testing.T) {
	m := machine(t, model.CannonLake8121U(), 2.2*units.GHz, 1, 1)
	if _, err := NewClockMod(m); err == nil {
		t.Fatal("clockmod on one core accepted")
	}
}

func TestChannelsFasterThanDVFSBaselines(t *testing.T) {
	// The point of the family: duty actuation is orders of magnitude
	// faster than governor-driven DVFS (50 ms windows), and retirement
	// contention is faster still.
	if !(1.0/120e-6 > 1.0/50e-3 && 1.0/20e-6 > 1.0/120e-6) {
		t.Fatal("mechanism-latency ordering broken")
	}
}

func TestValidBitsRejectsJunk(t *testing.T) {
	if err := validBits(nil); err == nil {
		t.Fatal("empty accepted")
	}
	if err := validBits([]int{0, 1, 2}); err == nil {
		t.Fatal("non-bit accepted")
	}
	if err := validBits([]int{0, 1, 1}); err != nil {
		t.Fatalf("valid bits rejected: %v", err)
	}
}
