// Package channels implements covert channels beyond the paper's
// current-management family. Each channel here is registered as a
// first-class scenario kind in internal/scenario, so it is reachable from
// every surface (CLI, HTTP, sweeps, refinement, store, distributed tier)
// without surface-specific code.
//
// Two families live here today:
//
//   - Retire: retirement-stage contention between SMT siblings
//     (arXiv 2307.12486). The sender modulates occupancy of the shared
//     retire/delivery bandwidth; the receiver decodes from its own
//     unhalted-cycle counter, not from wall-clock timing, so TSC jitter
//     does not touch the signal.
//
//   - ClockMod: duty-cycle throttling as the carrier
//     (arXiv 2404.05823). The sender programs the package T-states
//     (IA32_CLOCK_MODULATION); the receiver times a fixed scalar loop in
//     each bit window, the windowed decode shared with the TurboCC and
//     DFScovert frequency baselines.
package channels

import (
	"fmt"

	"ichannels/internal/stats"
	"ichannels/internal/units"
)

// Result reports one covert transmission over a channel in this package.
type Result struct {
	SentBits    []int
	DecodedBits []int
	// BER is the bit error rate.
	BER float64
	// ThroughputBPS is raw bits transmitted per second of channel time.
	ThroughputBPS float64
	// SymbolErrors counts wrongly decoded slots (1 bit per slot here, so
	// this equals the number of bit errors).
	SymbolErrors int
	// Elapsed is the wall time of the whole transmission.
	Elapsed units.Duration
}

// validBits rejects empty streams and non-binary values.
func validBits(bits []int) error {
	if len(bits) == 0 {
		return fmt.Errorf("channels: empty bit stream")
	}
	for i, b := range bits {
		if b != 0 && b != 1 {
			return fmt.Errorf("channels: bit %d is %d, want 0 or 1", i, b)
		}
	}
	return nil
}

// alternating builds the 1,0 calibration pattern used by both families.
func alternating(pairs int) []int {
	bits := make([]int, 0, 2*pairs)
	for i := 0; i < pairs; i++ {
		bits = append(bits, 1, 0)
	}
	return bits
}

// learnThreshold splits the calibration measurements by the known sent bit
// and returns the midpoint threshold and the one/zero mean gap. what names
// the physical contrast for the error message.
func learnThreshold(bits []int, measures []float64, what string) (threshold, gap float64, err error) {
	var ones, zeros []float64
	for i, m := range measures {
		if bits[i] == 1 {
			ones = append(ones, m)
		} else {
			zeros = append(zeros, m)
		}
	}
	mo, mz := stats.Summarize(ones).Mean, stats.Summarize(zeros).Mean
	if mo <= mz {
		return 0, 0, fmt.Errorf("channels: calibration found no %s contrast", what)
	}
	return (mo + mz) / 2, mo - mz, nil
}

// finish decodes measures against threshold and assembles the Result.
func finish(sent []int, measures []float64, threshold float64, elapsed units.Duration) *Result {
	decoded := make([]int, len(measures))
	for i, m := range measures {
		if m > threshold {
			decoded[i] = 1
		}
	}
	res := &Result{
		SentBits:    sent,
		DecodedBits: decoded,
		BER:         stats.BER(sent, decoded),
		Elapsed:     elapsed,
	}
	for i := range sent {
		if sent[i] != decoded[i] {
			res.SymbolErrors++
		}
	}
	if elapsed > 0 {
		res.ThroughputBPS = float64(len(sent)) / elapsed.Seconds()
	}
	return res
}
