package channels

import (
	"fmt"

	"ichannels/internal/isa"
	"ichannels/internal/soc"
	"ichannels/internal/units"
)

// Retire is a retirement-unit contention channel between SMT siblings
// (arXiv 2307.12486): the sender encodes 1 by running a scalar loop that
// competes for the core's shared uop delivery/retire bandwidth, and 0 by
// parking off-core. The receiver retires a fixed amount of scalar work each
// slot and reads its own CPU_CLK_UNHALTED delta — contended slots take ~2×
// the cycles of uncontended ones. Decoding from a performance counter
// rather than rdtsc gives the family its own spy path: timer fuzzing does
// not degrade it. Scalar kernels carry no PHI current, so the paper's
// license/throttle machinery (and all three mitigations) never engage.
type Retire struct {
	m *soc.Machine
	// SlotPeriod is one bit window.
	SlotPeriod units.Duration
	// SenderIters sizes each bit-1 contention burst; bursts repeat until
	// the slot is nearly over, so occupancy does not depend on the clock
	// frequency. Each burst must be shorter than contendTail even when
	// SMT sharing halves its rate.
	SenderIters int64
	// ReceiverIters sizes the fixed measurement loop.
	ReceiverIters int64
	// ReceiverOffset places the measurement after the slot boundary.
	ReceiverOffset units.Duration
	// Sender and receiver share a core on sibling hardware threads.
	SenderCore, SenderSlot     int
	ReceiverCore, ReceiverSlot int

	threshold float64
}

// spinLead is how long before a slot boundary a parked sender resumes
// spinning so it reaches the boundary on-core. It must be shorter than the
// gap between the end of a receiver measurement and the next slot start.
const spinLead = 2 * units.Microsecond

// contendTail is how long before the slot boundary the sender stops
// issuing contention bursts, bounding how far the last burst can overrun
// into a following 0-slot.
const contendTail = 3 * units.Microsecond

// NewRetire builds the channel on sibling threads of core 0.
func NewRetire(m *soc.Machine) (*Retire, error) {
	if m == nil {
		return nil, fmt.Errorf("channels: nil machine")
	}
	if m.Proc.SMTWays < 2 {
		return nil, fmt.Errorf("channels: retire channel needs an SMT processor; %s has none", m.Proc.Name)
	}
	return &Retire{
		m:              m,
		SlotPeriod:     20 * units.Microsecond,
		SenderIters:    16,
		ReceiverIters:  64,
		ReceiverOffset: units.Microsecond,
		SenderCore:     0, SenderSlot: 0,
		ReceiverCore: 0, ReceiverSlot: 1,
	}, nil
}

func (r *Retire) slotStart(base units.Time, k int) units.Time {
	return base.Add(units.Duration(k) * r.SlotPeriod)
}

// retireSender contends for the retire stage in 1-slots and parks off-core
// in 0-slots.
type retireSender struct {
	r     *Retire
	base  units.Time
	bits  []int
	idx   int
	phase int // 0 wait, 1 decide, 2 contend
}

func (a *retireSender) Name() string { return "retire.sender" }

func (a *retireSender) Next(env *soc.Env, prev *soc.Result) soc.Action {
	switch a.phase {
	case 0:
		if a.idx >= len(a.bits) {
			return soc.Stop()
		}
		a.phase = 1
		return soc.SpinUntil(a.r.slotStart(a.base, a.idx))
	case 1:
		if a.bits[a.idx] == 0 {
			// Park off-core so the 0-slot runs uncontended, resuming
			// just before the next boundary to reach the spin loop.
			a.idx++
			a.phase = 0
			return soc.IdleFor(a.r.SlotPeriod - spinLead)
		}
		a.phase = 2
		return soc.Exec(isa.Loop64b, a.r.SenderIters)
	case 2:
		slotEnd := a.r.slotStart(a.base, a.idx+1)
		if env.Now() < slotEnd.Add(-contendTail) {
			return soc.Exec(isa.Loop64b, a.r.SenderIters)
		}
		a.idx++
		a.phase = 0
		return a.Next(env, nil)
	default:
		panic("channels: retire sender in invalid phase")
	}
}

// retireReceiver retires fixed work each slot and records the unhalted
// cycles it took.
type retireReceiver struct {
	r        *Retire
	base     units.Time
	slots    int
	idx      int
	phase    int // 0 wait, 1 measure
	measures []float64
}

func (a *retireReceiver) Name() string { return "retire.receiver" }

func (a *retireReceiver) Next(env *soc.Env, prev *soc.Result) soc.Action {
	switch a.phase {
	case 0:
		if prev != nil && prev.Action.Kind == soc.ActExec {
			// prev was the measurement loop: its unhalted-cycle delta is
			// the reading (a counter, so TSC jitter never touches it).
			a.measures = append(a.measures, prev.Counters.UnhaltedCycles)
		}
		if a.idx >= a.slots {
			return soc.Stop()
		}
		a.phase = 1
		return soc.SpinUntil(a.r.slotStart(a.base, a.idx).Add(a.r.ReceiverOffset))
	case 1:
		a.idx++
		a.phase = 0
		return soc.Exec(isa.Loop64b, a.r.ReceiverIters)
	default:
		panic("channels: retire receiver in invalid phase")
	}
}

func (r *Retire) run(bits []int) ([]float64, error) {
	base := r.m.Now().Add(20 * units.Microsecond)
	snd := &retireSender{r: r, base: base, bits: bits}
	rcv := &retireReceiver{r: r, base: base, slots: len(bits),
		measures: make([]float64, 0, len(bits))}
	if _, err := r.m.Bind(r.SenderCore, r.SenderSlot, snd); err != nil {
		return nil, err
	}
	if _, err := r.m.Bind(r.ReceiverCore, r.ReceiverSlot, rcv); err != nil {
		return nil, err
	}
	r.m.RunUntil(r.slotStart(base, len(bits)).Add(50 * units.Microsecond))
	if len(rcv.measures) != len(bits) {
		return nil, fmt.Errorf("channels: retire measured %d of %d bits (simulation ended early?)",
			len(rcv.measures), len(bits))
	}
	return rcv.measures, nil
}

// Calibrate learns the contended/uncontended decision threshold from
// alternating 1,0 pairs and returns the mean cycle gap between them.
func (r *Retire) Calibrate(pairs int) (float64, error) {
	if pairs <= 0 {
		return 0, fmt.Errorf("channels: pairs must be positive")
	}
	bits := alternating(pairs)
	measures, err := r.run(bits)
	if err != nil {
		return 0, err
	}
	threshold, gap, err := learnThreshold(bits, measures, "retirement contention")
	if err != nil {
		return 0, err
	}
	r.threshold = threshold
	return gap, nil
}

// Transmit sends bits (1 bit per slot) and decodes them against the
// calibrated threshold.
func (r *Retire) Transmit(bits []int) (*Result, error) {
	if err := validBits(bits); err != nil {
		return nil, err
	}
	if r.threshold == 0 {
		return nil, fmt.Errorf("channels: retire channel not calibrated")
	}
	measures, err := r.run(bits)
	if err != nil {
		return nil, err
	}
	return finish(bits, measures, r.threshold, units.Duration(len(bits))*r.SlotPeriod), nil
}

// RawThroughputBPS is the slot-rate bound on throughput.
func (r *Retire) RawThroughputBPS() float64 {
	return 1 / r.SlotPeriod.Seconds()
}
