package channels

import (
	"fmt"

	"ichannels/internal/isa"
	"ichannels/internal/soc"
	"ichannels/internal/units"
)

// ClockMod is a clock-modulation covert channel (arXiv 2404.05823): the
// sender programs the package duty cycle (IA32_CLOCK_MODULATION T-states)
// once per bit window — 1 gates the front-end to DutyLow, 0 restores full
// delivery — and the receiver times a fixed scalar loop inside each window.
// Unlike the DVFS carriers (TurboCC, DFScovert) duty changes take effect
// with MSR-write latency rather than governor sampling plus PLL relock, so
// the bit period is microseconds, not tens of milliseconds; the decode is
// the same windowed threshold those baselines use.
type ClockMod struct {
	m *soc.Machine
	// BitPeriod is one bit window.
	BitPeriod units.Duration
	// ActuationLatency is the delay between the sender's MSR write and
	// the duty change reaching the cores.
	ActuationLatency units.Duration
	// DutyLow is the modulated duty cycle encoding a 1 (in (0,1)).
	DutyLow float64
	// MeasureIters sizes the receiver's scalar timing loop.
	MeasureIters int64
	// MeasureOffset places the measurement inside the bit window.
	MeasureOffset units.Duration
	// The receiver times loops on its own core; the sender is a software
	// actor that only needs a thread to spin on.
	SenderCore, SenderSlot     int
	ReceiverCore, ReceiverSlot int

	threshold float64
}

// NewClockMod builds the channel: sender on core 0, receiver timing on
// core 1 (duty modulation is package-wide, so any second core works).
func NewClockMod(m *soc.Machine) (*ClockMod, error) {
	if m == nil {
		return nil, fmt.Errorf("channels: nil machine")
	}
	if len(m.Cores) < 2 {
		return nil, fmt.Errorf("channels: clockmod channel needs two cores")
	}
	return &ClockMod{
		m:                m,
		BitPeriod:        120 * units.Microsecond,
		ActuationLatency: 2 * units.Microsecond,
		DutyLow:          0.25,
		MeasureIters:     200,
		MeasureOffset:    10 * units.Microsecond,
		SenderCore:       0, SenderSlot: 0,
		ReceiverCore: 1, ReceiverSlot: 0,
	}, nil
}

// cmSender issues one duty-cycle write per bit window.
type cmSender struct {
	c    *ClockMod
	base units.Time
	bits []int
	idx  int
}

func (a *cmSender) Name() string { return "clockmod.sender" }

func (a *cmSender) Next(env *soc.Env, prev *soc.Result) soc.Action {
	if prev != nil {
		// The spin to the window boundary completed: write the MSR.
		bit := a.bits[a.idx]
		a.idx++
		target := 1.0
		if bit == 1 {
			target = a.c.DutyLow
		}
		env.M.Q.After(a.c.ActuationLatency, "clockmod.duty.apply", func(units.Time) {
			env.M.PMU.SetClockDuty(target)
		})
	}
	if a.idx >= len(a.bits) {
		return soc.Stop()
	}
	return soc.SpinUntil(a.base.Add(units.Duration(a.idx) * a.c.BitPeriod))
}

// cmReceiver times a scalar loop at the measurement offset of each window.
type cmReceiver struct {
	c        *ClockMod
	base     units.Time
	windows  int
	idx      int
	phase    int // 0 wait, 1 measure
	measures []float64
}

func (a *cmReceiver) Name() string { return "clockmod.receiver" }

func (a *cmReceiver) Next(env *soc.Env, prev *soc.Result) soc.Action {
	switch a.phase {
	case 0:
		if prev != nil && prev.Action.Kind == soc.ActExec {
			a.measures = append(a.measures, float64(prev.ElapsedTSC()))
		}
		if a.idx >= a.windows {
			return soc.Stop()
		}
		a.phase = 1
		return soc.SpinUntil(a.base.Add(units.Duration(a.idx)*a.c.BitPeriod + a.c.MeasureOffset))
	case 1:
		a.idx++
		a.phase = 0
		return soc.Exec(isa.Loop64b, a.c.MeasureIters)
	default:
		panic("channels: clockmod receiver in invalid phase")
	}
}

func (c *ClockMod) run(bits []int) ([]float64, error) {
	base := c.m.Now().Add(50 * units.Microsecond)
	snd := &cmSender{c: c, base: base, bits: bits}
	rcv := &cmReceiver{c: c, base: base, windows: len(bits),
		measures: make([]float64, 0, len(bits))}
	if _, err := c.m.Bind(c.SenderCore, c.SenderSlot, snd); err != nil {
		return nil, err
	}
	if _, err := c.m.Bind(c.ReceiverCore, c.ReceiverSlot, rcv); err != nil {
		return nil, err
	}
	end := c.windowStart(base, len(bits)).Add(100 * units.Microsecond)
	c.m.RunUntil(end)
	// Restore full duty for whatever runs next on this machine.
	c.m.PMU.SetClockDuty(1)
	c.m.RunFor(100 * units.Microsecond)
	if len(rcv.measures) != len(bits) {
		return nil, fmt.Errorf("channels: clockmod measured %d of %d bits (simulation ended early?)",
			len(rcv.measures), len(bits))
	}
	return rcv.measures, nil
}

func (c *ClockMod) windowStart(base units.Time, k int) units.Time {
	return base.Add(units.Duration(k) * c.BitPeriod)
}

// Calibrate learns the modulated/unmodulated decision threshold from
// alternating 1,0 pairs and returns the mean TSC-cycle gap between them.
func (c *ClockMod) Calibrate(pairs int) (float64, error) {
	if pairs <= 0 {
		return 0, fmt.Errorf("channels: pairs must be positive")
	}
	bits := alternating(pairs)
	measures, err := c.run(bits)
	if err != nil {
		return 0, err
	}
	threshold, gap, err := learnThreshold(bits, measures, "duty-cycle")
	if err != nil {
		return 0, err
	}
	c.threshold = threshold
	return gap, nil
}

// Transmit sends bits (1 bit per window) and decodes them against the
// calibrated threshold.
func (c *ClockMod) Transmit(bits []int) (*Result, error) {
	if err := validBits(bits); err != nil {
		return nil, err
	}
	if c.threshold == 0 {
		return nil, fmt.Errorf("channels: clockmod channel not calibrated")
	}
	measures, err := c.run(bits)
	if err != nil {
		return nil, err
	}
	return finish(bits, measures, c.threshold, units.Duration(len(bits))*c.BitPeriod), nil
}

// RawThroughputBPS is the window-rate bound on throughput.
func (c *ClockMod) RawThroughputBPS() float64 {
	return 1 / c.BitPeriod.Seconds()
}
