package core

import (
	"fmt"
	"math"

	"ichannels/internal/ecc"
)

// TransmitFrame sends a byte payload through the channel wrapped in the
// §6.3 noise-recovery framing: Hamming(7,4) coding, interleaving, and a
// CRC-8 end-to-end check, retransmitting up to maxAttempts times until the
// receiver validates the frame. It returns the attempt count and the last
// transmission's statistics alongside the recovered payload.
func (c *Channel) TransmitFrame(payload []byte, interleaveDepth, maxAttempts int) ([]byte, int, *TransmitResult, error) {
	if maxAttempts <= 0 {
		maxAttempts = 1
	}
	frame, err := ecc.EncodeFrame(payload, interleaveDepth)
	if err != nil {
		return nil, 0, nil, err
	}
	var last *TransmitResult
	for attempt := 1; attempt <= maxAttempts; attempt++ {
		res, err := c.Transmit(frame)
		if err != nil {
			return nil, attempt, nil, err
		}
		last = res
		got, _, err := ecc.DecodeFrame(res.DecodedBits, interleaveDepth)
		if err == nil {
			return got, attempt, last, nil
		}
	}
	return nil, maxAttempts, last, fmt.Errorf("core: frame unrecoverable after %d attempts (last BER %.4f)", maxAttempts, last.BER)
}

// Confusion builds the symbol confusion matrix of a transmission:
// Confusion[s][d] counts transactions where symbol s was sent and d
// decoded.
func (r *TransmitResult) Confusion() [NumSymbols][NumSymbols]int {
	var m [NumSymbols][NumSymbols]int
	for i := range r.Sent {
		m[r.Sent[i]][r.Decoded[i]]++
	}
	return m
}

// CapacityBitsPerSymbol estimates the Shannon capacity of the discrete
// channel observed during the transmission: the mutual information I(S;D)
// of the empirical symbol confusion matrix, in bits per transaction. An
// error-free transmission of a uniform symbol stream approaches 2 bits —
// the paper's "two bits per communication transaction".
func (r *TransmitResult) CapacityBitsPerSymbol() float64 {
	m := r.Confusion()
	n := float64(len(r.Sent))
	if n == 0 {
		return 0
	}
	var ps, pd [NumSymbols]float64
	for s := 0; s < NumSymbols; s++ {
		for d := 0; d < NumSymbols; d++ {
			p := float64(m[s][d]) / n
			ps[s] += p
			pd[d] += p
		}
	}
	var mi float64
	for s := 0; s < NumSymbols; s++ {
		for d := 0; d < NumSymbols; d++ {
			p := float64(m[s][d]) / n
			if p > 0 && ps[s] > 0 && pd[d] > 0 {
				mi += p * math.Log2(p/(ps[s]*pd[d]))
			}
		}
	}
	return mi
}

// CapacityBPS converts the mutual-information estimate to bits/second at
// the transmission's transaction rate.
func (r *TransmitResult) CapacityBPS() float64 {
	if r.Elapsed <= 0 || len(r.Sent) == 0 {
		return 0
	}
	perSlot := r.CapacityBitsPerSymbol()
	slots := float64(len(r.Sent))
	return perSlot * slots / r.Elapsed.Seconds()
}
