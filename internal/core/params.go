package core

import (
	"fmt"

	"ichannels/internal/model"
	"ichannels/internal/units"
)

// Params time-boxes one covert transaction. A transaction occupies one
// slot: the sender encodes a symbol as a PHI loop at the slot start, the
// receiver measures its own loop's elapsed cycles, and both sides then
// wait out the license reset-time so the next transaction starts from the
// baseline voltage (paper §4.1.2, §6.2).
type Params struct {
	Kind Kind

	// SlotPeriod is the full transaction cycle (send window + reset
	// time). It must exceed the last PHI touch in the slot by at least
	// the license hysteresis, or the voltage never resets and symbols
	// collapse.
	SlotPeriod units.Duration

	// SenderIters sizes the sender's PHI loop. It must keep the sender
	// executing until its voltage transition completes (otherwise the
	// receiver's request is serialized behind an unfinished ramp and
	// the level information degrades).
	SenderIters int64

	// ReceiverIters sizes the receiver's measurement loop. The loop must
	// outlast the longest throttling period it needs to witness.
	ReceiverIters int64

	// ReceiverOffset delays the receiver's measurement from the slot
	// start. Cross-core it must land the receiver's license request
	// while the sender's ramp is in flight (a few µs); on the same
	// thread it is unused (the measurement follows the send directly).
	ReceiverOffset units.Duration

	// SenderCore/SenderSlot and ReceiverCore/ReceiverSlot place the two
	// contexts (defaults depend on Kind).
	SenderCore, SenderSlot     int
	ReceiverCore, ReceiverSlot int
}

// DefaultParams returns transaction parameters tuned for a processor
// profile. The send window stays within ~60 µs and the slot covers the
// last PHI touch plus the license hysteresis, yielding ≈2.8–2.9 kb/s of
// raw channel capacity (paper §6.2 reports 2.9 kb/s with a 690 µs cycle).
func DefaultParams(kind Kind, p model.Processor) Params {
	// Sender loop: long enough at quarter rate to span the worst-case
	// ramp (~32 µs on Cannon Lake); 9 µs of full-rate work ≈ 36 µs
	// under throttle.
	// Receiver loop: ~7 µs of full-rate work so it outlasts 0.25·TPmax.
	pr := Params{
		Kind:          kind,
		SenderIters:   64, // 64 iters × 200 uops @1 UPC ≈ 9.1 µs full-rate at 1.4 GHz+
		ReceiverIters: 64,
	}
	switch kind {
	case SameThread:
		pr.SlotPeriod = p.LicenseHysteresis + 62*units.Microsecond
		pr.ReceiverCore, pr.ReceiverSlot = 0, 0
	case SMT:
		pr.SlotPeriod = p.LicenseHysteresis + 52*units.Microsecond
		pr.ReceiverIters = 160 // scalar loop at 2 UPC; must outlast the TP
		pr.ReceiverCore, pr.ReceiverSlot = 0, 1
	case CrossCore:
		pr.SlotPeriod = p.LicenseHysteresis + 58*units.Microsecond
		// The 128b_Heavy measurement loop must outlast the worst-case
		// serialized throttling period (~37 µs) or its reading
		// saturates at 4× its unthrottled length and the top symbols
		// collapse.
		pr.ReceiverIters = 150
		pr.ReceiverOffset = 2 * units.Microsecond
		pr.ReceiverCore, pr.ReceiverSlot = 1, 0
	}
	return pr
}

// Validate checks parameter consistency against a machine shape.
func (p Params) Validate(cores, smtWays int) error {
	if p.SlotPeriod <= 0 {
		return fmt.Errorf("core: slot period must be positive")
	}
	if p.SenderIters <= 0 || p.ReceiverIters <= 0 {
		return fmt.Errorf("core: iteration counts must be positive")
	}
	if p.ReceiverOffset < 0 {
		return fmt.Errorf("core: negative receiver offset")
	}
	check := func(role string, core, slot int) error {
		if core < 0 || core >= cores {
			return fmt.Errorf("core: %s core %d outside machine (%d cores)", role, core, cores)
		}
		if slot < 0 || slot >= smtWays {
			return fmt.Errorf("core: %s slot %d outside SMT ways (%d)", role, slot, smtWays)
		}
		return nil
	}
	if err := check("sender", p.SenderCore, p.SenderSlot); err != nil {
		return err
	}
	if err := check("receiver", p.ReceiverCore, p.ReceiverSlot); err != nil {
		return err
	}
	switch p.Kind {
	case SameThread:
		if p.SenderCore != p.ReceiverCore || p.SenderSlot != p.ReceiverSlot {
			return fmt.Errorf("core: IccThreadCovert requires sender and receiver on the same hardware thread")
		}
	case SMT:
		if p.SenderCore != p.ReceiverCore {
			return fmt.Errorf("core: IccSMTcovert requires sender and receiver on the same core")
		}
		if p.SenderSlot == p.ReceiverSlot {
			return fmt.Errorf("core: IccSMTcovert requires distinct SMT slots")
		}
		if smtWays < 2 {
			return fmt.Errorf("core: IccSMTcovert requires an SMT-capable processor")
		}
	case CrossCore:
		if p.SenderCore == p.ReceiverCore {
			return fmt.Errorf("core: IccCoresCovert requires distinct cores")
		}
	default:
		return fmt.Errorf("core: invalid channel kind %d", int(p.Kind))
	}
	return nil
}

// BitsPerSlot is the payload of one transaction.
const BitsPerSlot = 2

// RawThroughputBPS returns the channel's nominal capacity in bits/second.
func (p Params) RawThroughputBPS() float64 {
	return BitsPerSlot / p.SlotPeriod.Seconds()
}
