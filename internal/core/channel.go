package core

import (
	"fmt"

	"ichannels/internal/soc"
	"ichannels/internal/stats"
	"ichannels/internal/units"
)

// Channel is one configured IChannels covert channel on a machine.
type Channel struct {
	m   *soc.Machine
	p   Params
	cal *Calibration
}

// New validates the placement against the machine and returns a channel.
func New(m *soc.Machine, p Params) (*Channel, error) {
	if m == nil {
		return nil, fmt.Errorf("core: nil machine")
	}
	if err := p.Validate(len(m.Cores), m.Proc.SMTWays); err != nil {
		return nil, err
	}
	return &Channel{m: m, p: p}, nil
}

// Params returns the channel's transaction parameters.
func (c *Channel) Params() Params { return c.p }

// Calibration returns the current calibration (nil before Calibrate).
func (c *Channel) Calibration() *Calibration { return c.cal }

// SetCalibration installs an externally learned calibration (used by the
// mitigation study to reuse a baseline calibration).
func (c *Channel) SetCalibration(cal *Calibration) { c.cal = cal }

// slotStart returns the absolute start time of transaction slot k for a
// run whose first slot begins at base.
func (c *Channel) slotStart(base units.Time, k int) units.Time {
	return base.Add(units.Duration(k) * c.p.SlotPeriod)
}

// senderPhase tracks the sender agent's position in the slot cycle.
type senderPhase int

const (
	sWaitSlot senderPhase = iota
	sSending
)

// senderAgent transmits one symbol per slot: busy-wait to the slot
// boundary (wall-clock sync, paper §4.3.3), then run the symbol's PHI loop.
type senderAgent struct {
	ch       *Channel
	base     units.Time
	schedule []Symbol
	idx      int
	phase    senderPhase
}

func (s *senderAgent) Name() string { return "ichannels.sender" }

func (s *senderAgent) Next(env *soc.Env, prev *soc.Result) soc.Action {
	switch s.phase {
	case sWaitSlot:
		if s.idx >= len(s.schedule) {
			return soc.Stop()
		}
		s.phase = sSending
		return soc.SpinUntil(s.ch.slotStart(s.base, s.idx))
	case sSending:
		sym := s.schedule[s.idx]
		s.idx++
		s.phase = sWaitSlot
		return soc.Exec(sym.Kernel(), s.ch.p.SenderIters)
	default:
		panic("core: sender agent in invalid phase")
	}
}

// receiverPhase tracks the receiver agent's position in the slot cycle.
type receiverPhase int

const (
	rWaitSlot receiverPhase = iota
	rMeasuring
)

// receiverAgent measures one throttling period per slot: busy-wait to the
// slot boundary (plus offset), run the kind's measurement loop, record its
// rdtsc-elapsed cycles.
type receiverAgent struct {
	ch       *Channel
	base     units.Time
	slots    int
	idx      int
	phase    receiverPhase
	measures []int64
}

func (r *receiverAgent) Name() string { return "ichannels.receiver" }

func (r *receiverAgent) Next(env *soc.Env, prev *soc.Result) soc.Action {
	switch r.phase {
	case rWaitSlot:
		if prev != nil && prev.Action.Kind == soc.ActExec {
			// prev was the measurement loop: record its rdtsc reading.
			r.measures = append(r.measures, prev.ElapsedTSC())
		}
		if r.idx >= r.slots {
			return soc.Stop()
		}
		r.phase = rMeasuring
		return soc.SpinUntil(r.ch.slotStart(r.base, r.idx).Add(r.ch.p.ReceiverOffset))
	case rMeasuring:
		r.idx++
		r.phase = rWaitSlot
		return soc.Exec(r.ch.p.Kind.ReceiverKernel(), r.ch.p.ReceiverIters)
	default:
		panic("core: receiver agent in invalid phase")
	}
}

// sameThreadAgent interleaves sending and measuring on one hardware thread
// (IccThreadCovert): spin to slot start, run the symbol PHI loop, then run
// the 512b_Heavy measurement loop and record its elapsed cycles.
type sameThreadAgent struct {
	ch       *Channel
	base     units.Time
	schedule []Symbol
	idx      int
	phase    int // 0 wait, 1 sending, 2 measuring
	measures []int64
}

func (a *sameThreadAgent) Name() string { return "ichannels.samethread" }

func (a *sameThreadAgent) Next(env *soc.Env, prev *soc.Result) soc.Action {
	switch a.phase {
	case 0:
		if prev != nil && prev.Action.Kind == soc.ActExec {
			// prev was the measurement loop: record its rdtsc reading.
			a.measures = append(a.measures, prev.ElapsedTSC())
		}
		if a.idx >= len(a.schedule) {
			return soc.Stop()
		}
		a.phase = 1
		return soc.SpinUntil(a.ch.slotStart(a.base, a.idx))
	case 1:
		sym := a.schedule[a.idx]
		a.phase = 2
		return soc.Exec(sym.Kernel(), a.ch.p.SenderIters)
	case 2:
		a.idx++
		a.phase = 0
		return soc.Exec(a.ch.p.Kind.ReceiverKernel(), a.ch.p.ReceiverIters)
	default:
		panic("core: same-thread agent in invalid phase")
	}
}

// RunSymbols performs one transaction per symbol in schedule and returns
// the receiver's raw measurements (TSC cycles), in slot order. This is
// the primitive under Calibrate and Transmit; experiments also use it
// directly (e.g. the Fig. 13 distributions).
func (c *Channel) RunSymbols(schedule []Symbol) ([]int64, error) {
	if len(schedule) == 0 {
		return nil, fmt.Errorf("core: empty schedule")
	}
	for _, s := range schedule {
		if !s.Valid() {
			return nil, fmt.Errorf("core: invalid symbol %d in schedule", int(s))
		}
	}
	// First slot starts shortly after "now" so both sides can reach
	// their spin loops.
	base := c.m.Now().Add(20 * units.Microsecond)

	// Measurement slices are sized up front: one reading per slot, so
	// the per-slot append in the agent hot path never reallocates.
	var measures *[]int64
	if c.p.Kind == SameThread {
		agent := &sameThreadAgent{ch: c, base: base, schedule: schedule,
			measures: make([]int64, 0, len(schedule))}
		if _, err := c.m.Bind(c.p.SenderCore, c.p.SenderSlot, agent); err != nil {
			return nil, err
		}
		measures = &agent.measures
	} else {
		snd := &senderAgent{ch: c, base: base, schedule: schedule}
		rcv := &receiverAgent{ch: c, base: base, slots: len(schedule),
			measures: make([]int64, 0, len(schedule))}
		if _, err := c.m.Bind(c.p.SenderCore, c.p.SenderSlot, snd); err != nil {
			return nil, err
		}
		if _, err := c.m.Bind(c.p.ReceiverCore, c.p.ReceiverSlot, rcv); err != nil {
			return nil, err
		}
		measures = &rcv.measures
	}
	// Advance to the end of the last slot plus a settling margin.
	c.m.RunUntil(c.slotStart(base, len(schedule)).Add(100 * units.Microsecond))
	if len(*measures) != len(schedule) {
		return nil, fmt.Errorf("core: expected %d measurements, got %d (simulation ended early?)",
			len(schedule), len(*measures))
	}
	return *measures, nil
}

// Calibrate learns the decision thresholds by transmitting a known
// round-robin symbol pattern perSymbol times each and clustering the
// receiver's measurements.
func (c *Channel) Calibrate(perSymbol int) (*Calibration, error) {
	if perSymbol <= 0 {
		return nil, fmt.Errorf("core: perSymbol must be positive")
	}
	schedule := make([]Symbol, 0, NumSymbols*perSymbol)
	for i := 0; i < perSymbol; i++ {
		for s := 0; s < NumSymbols; s++ {
			schedule = append(schedule, Symbol(s))
		}
	}
	measures, err := c.RunSymbols(schedule)
	if err != nil {
		return nil, err
	}
	var groups [NumSymbols][]float64
	for s := range groups {
		groups[s] = make([]float64, 0, perSymbol)
	}
	for i, m := range measures {
		s := schedule[i]
		groups[s] = append(groups[s], float64(m))
	}
	cal, err := NewCalibration(groups)
	if err != nil {
		return nil, err
	}
	c.cal = cal
	return cal, nil
}

// TransmitResult reports one covert transmission.
type TransmitResult struct {
	Sent    []Symbol
	Decoded []Symbol
	// Measures holds the receiver's raw per-slot measurement (cycles).
	Measures []int64
	// SentBits/DecodedBits are the flattened bit streams.
	SentBits, DecodedBits []int
	// Elapsed is the wall time of the whole transmission.
	Elapsed units.Duration
	// ThroughputBPS is raw bits transmitted per second of channel time.
	ThroughputBPS float64
	// BER is the bit error rate.
	BER float64
	// SymbolErrors counts wrongly decoded symbols.
	SymbolErrors int
}

// Transmit sends a bit stream (even length) over the channel and decodes
// it with the current calibration.
func (c *Channel) Transmit(bits []int) (*TransmitResult, error) {
	if c.cal == nil {
		return nil, fmt.Errorf("core: channel not calibrated; call Calibrate first")
	}
	syms, err := SymbolsFromBits(bits)
	if err != nil {
		return nil, err
	}
	measures, err := c.RunSymbols(syms)
	if err != nil {
		return nil, err
	}
	elapsed := units.Duration(len(syms)) * c.p.SlotPeriod
	res := &TransmitResult{
		Sent:     syms,
		Decoded:  make([]Symbol, 0, len(measures)),
		Measures: measures,
		Elapsed:  elapsed,
		SentBits: bits,
	}
	for _, m := range measures {
		res.Decoded = append(res.Decoded, c.cal.Decode(float64(m)))
	}
	res.DecodedBits = BitsFromSymbols(res.Decoded)
	res.BER = stats.BER(res.SentBits, res.DecodedBits)
	for i := range res.Sent {
		if res.Sent[i] != res.Decoded[i] {
			res.SymbolErrors++
		}
	}
	if elapsed > 0 {
		res.ThroughputBPS = float64(len(bits)) / elapsed.Seconds()
	}
	return res, nil
}
