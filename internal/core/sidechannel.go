package core

import (
	"fmt"

	"ichannels/internal/isa"
	"ichannels/internal/soc"
	"ichannels/internal/units"
)

// Spy turns the Multi-Throttling-SMT and Multi-Throttling-Cores
// side-effects into a *side* channel (paper §6.5): without any cooperating
// sender, an attacker co-located with a victim infers the operand width of
// the instructions the victim is executing (64/128/256/512-bit) from the
// throttling period the attacker itself experiences.
type Spy struct {
	m *soc.Machine
	// Kind must be SMT or CrossCore (a victim does not time-share its
	// own thread with the attacker).
	Kind Kind
	// Window is the observation window per classification.
	Window units.Duration
	// MeasureIters sizes the spy's probe loop.
	MeasureIters int64
	// VictimCore/VictimSlot and SpyCore/SpySlot place the two parties.
	VictimCore, VictimSlot int
	SpyCore, SpySlot       int

	// means[w] is the calibrated measurement for width class w.
	means []float64
	// widths are the distinguishable victim classes.
	widths []isa.Class
}

// VictimWidths returns the instruction classes the spy distinguishes:
// the heavy kernel of each operand width (paper §6.5 names the widths).
func VictimWidths() []isa.Class {
	return []isa.Class{isa.Scalar64, isa.Vec128Heavy, isa.Vec256Heavy, isa.Vec512Heavy}
}

// NewSpy builds a side-channel observer.
func NewSpy(m *soc.Machine, kind Kind) (*Spy, error) {
	if m == nil {
		return nil, fmt.Errorf("core: nil machine")
	}
	s := &Spy{
		m:            m,
		Kind:         kind,
		Window:       m.Proc.LicenseHysteresis + 60*units.Microsecond,
		MeasureIters: 160,
		widths:       VictimWidths(),
	}
	switch kind {
	case SMT:
		if m.Proc.SMTWays < 2 {
			return nil, fmt.Errorf("core: SMT spy needs an SMT processor")
		}
		s.SpySlot = 1
	case CrossCore:
		if len(m.Cores) < 2 {
			return nil, fmt.Errorf("core: cross-core spy needs two cores")
		}
		s.SpyCore = 1
		s.MeasureIters = 150
	default:
		return nil, fmt.Errorf("core: spy kind must be SMT or CrossCore, got %v", kind)
	}
	return s, nil
}

// spyProbe measures one window: spin to the window boundary (+2 µs for the
// cross-core variant so the victim's ramp is in flight), then time the
// probe loop.
type spyProbe struct {
	s        *Spy
	base     units.Time
	windows  int
	idx      int
	phase    int
	measures []int64
}

func (a *spyProbe) Name() string { return "spy" }

func (a *spyProbe) probeKernel() isa.Kernel {
	if a.s.Kind == CrossCore {
		return isa.Loop128Heavy
	}
	return isa.Loop64b
}

func (a *spyProbe) Next(env *soc.Env, prev *soc.Result) soc.Action {
	switch a.phase {
	case 0:
		if prev != nil && prev.Action.Kind == soc.ActExec {
			a.measures = append(a.measures, prev.ElapsedTSC())
		}
		if a.idx >= a.windows {
			return soc.Stop()
		}
		a.phase = 1
		off := units.Duration(0)
		if a.s.Kind == CrossCore {
			off = 2 * units.Microsecond
		}
		return soc.SpinUntil(a.base.Add(units.Duration(a.idx)*a.s.Window + off))
	case 1:
		a.idx++
		a.phase = 0
		return soc.Exec(a.probeKernel(), a.s.MeasureIters)
	default:
		panic("core: spy probe in invalid phase")
	}
}

// victimLoop executes one kernel class per window — the code whose
// instruction mix the spy tries to identify.
type victimLoop struct {
	s       *Spy
	base    units.Time
	classes []isa.Class
	idx     int
	sent    bool
}

func (v *victimLoop) Name() string { return "victim" }

func (v *victimLoop) Next(env *soc.Env, prev *soc.Result) soc.Action {
	if !v.sent {
		if v.idx >= len(v.classes) {
			return soc.Stop()
		}
		v.sent = true
		return soc.SpinUntil(v.base.Add(units.Duration(v.idx) * v.s.Window))
	}
	cls := v.classes[v.idx]
	v.idx++
	v.sent = false
	return soc.Exec(isa.KernelFor(cls), 64)
}

// observe runs the spy against a victim executing the given class
// sequence and returns the spy's per-window measurements.
func (s *Spy) observe(classes []isa.Class) ([]int64, error) {
	base := s.m.Now().Add(20 * units.Microsecond)
	victim := &victimLoop{s: s, base: base, classes: classes}
	probe := &spyProbe{s: s, base: base, windows: len(classes),
		measures: make([]int64, 0, len(classes))}
	if _, err := s.m.Bind(s.VictimCore, s.VictimSlot, victim); err != nil {
		return nil, err
	}
	if _, err := s.m.Bind(s.SpyCore, s.SpySlot, probe); err != nil {
		return nil, err
	}
	end := base.Add(units.Duration(len(classes)) * s.Window).Add(100 * units.Microsecond)
	s.m.RunUntil(end)
	if len(probe.measures) != len(classes) {
		return nil, fmt.Errorf("core: spy captured %d of %d windows", len(probe.measures), len(classes))
	}
	return probe.measures, nil
}

// Calibrate teaches the spy the measurement signature of each victim
// width using a training victim under the attacker's control.
func (s *Spy) Calibrate(perWidth int) error {
	if perWidth <= 0 {
		return fmt.Errorf("core: perWidth must be positive")
	}
	classes := make([]isa.Class, 0, perWidth*len(s.widths))
	for i := 0; i < perWidth; i++ {
		classes = append(classes, s.widths...)
	}
	measures, err := s.observe(classes)
	if err != nil {
		return err
	}
	sums := make([]float64, len(s.widths))
	counts := make([]int, len(s.widths))
	for i, m := range measures {
		w := i % len(s.widths)
		sums[w] += float64(m)
		counts[w]++
	}
	s.means = make([]float64, len(s.widths))
	for i := range sums {
		s.means[i] = sums[i] / float64(counts[i])
	}
	return nil
}

// InferenceResult reports a side-channel observation run.
type InferenceResult struct {
	Actual   []isa.Class
	Inferred []isa.Class
	Accuracy float64
	// Confusion[a][p] counts windows with actual width index a inferred
	// as width index p.
	Confusion [][]int
}

// Infer observes a victim running the given class sequence (one class per
// window) and classifies each window by nearest calibrated mean.
func (s *Spy) Infer(classes []isa.Class) (*InferenceResult, error) {
	if s.means == nil {
		return nil, fmt.Errorf("core: spy not calibrated")
	}
	for _, c := range classes {
		if s.widthIndex(c) < 0 {
			return nil, fmt.Errorf("core: class %v is not a calibrated victim width", c)
		}
	}
	measures, err := s.observe(classes)
	if err != nil {
		return nil, err
	}
	res := &InferenceResult{
		Actual:    classes,
		Inferred:  make([]isa.Class, 0, len(classes)),
		Confusion: make([][]int, len(s.widths)),
	}
	for i := range res.Confusion {
		res.Confusion[i] = make([]int, len(s.widths))
	}
	correct := 0
	for i, m := range measures {
		best, bestD := 0, -1.0
		for w, mean := range s.means {
			d := float64(m) - mean
			if d < 0 {
				d = -d
			}
			if bestD < 0 || d < bestD {
				best, bestD = w, d
			}
		}
		res.Inferred = append(res.Inferred, s.widths[best])
		ai := s.widthIndex(classes[i])
		res.Confusion[ai][best]++
		if s.widths[best] == classes[i] {
			correct++
		}
	}
	res.Accuracy = float64(correct) / float64(len(classes))
	return res, nil
}

func (s *Spy) widthIndex(c isa.Class) int {
	for i, w := range s.widths {
		if w == c {
			return i
		}
	}
	return -1
}
