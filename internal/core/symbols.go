// Package core implements IChannels — the paper's primary contribution:
// covert channels that communicate through the multi-level throttling
// periods of the processor's current management mechanisms. Three channel
// variants are provided, matching the paper's §4:
//
//   - IccThreadCovert: sender and receiver share one hardware thread; the
//     receiver's 512b_Heavy measurement loop reveals how far the voltage
//     had already ramped for the sender's PHI (Multi-Throttling-Thread).
//   - IccSMTcovert: sender and receiver are SMT siblings; the receiver's
//     scalar loop is slowed by the core-wide IDQ throttle for a period
//     proportional to the sender's PHI intensity (Multi-Throttling-SMT).
//   - IccCoresCovert: sender and receiver sit on different cores; the
//     shared regulator serializes their voltage transitions, so the
//     receiver's own throttling period embeds the sender's
//     (Multi-Throttling-Cores).
//
// Each transaction carries two bits, encoded as one of four PHI intensity
// levels (paper Fig. 3), and transactions are paced by the 650 µs license
// reset-time.
package core

import (
	"fmt"

	"ichannels/internal/isa"
)

// Symbol is a 2-bit covert symbol (0..3, i.e. bit patterns 00..11).
type Symbol int

// NumSymbols is the symbol alphabet size (2 bits per transaction).
const NumSymbols = 4

// Valid reports whether s is within the alphabet.
func (s Symbol) Valid() bool { return s >= 0 && s < NumSymbols }

// Bits returns the symbol's two bits, most significant first
// (send_bits[i+1:i] in the paper's pseudo-code).
func (s Symbol) Bits() (hi, lo int) { return int(s) >> 1 & 1, int(s) & 1 }

// SymbolFromBits packs two bits into a symbol.
func SymbolFromBits(hi, lo int) Symbol { return Symbol((hi&1)<<1 | lo&1) }

// Class returns the PHI intensity class encoding the symbol, per the
// paper's Fig. 3:
//
//	00 → 128b_Heavy (level L4)
//	01 → 256b_Light (level L3)
//	10 → 256b_Heavy (level L2)
//	11 → 512b_Heavy (level L1)
func (s Symbol) Class() isa.Class {
	switch s {
	case 0:
		return isa.Vec128Heavy
	case 1:
		return isa.Vec256Light
	case 2:
		return isa.Vec256Heavy
	case 3:
		return isa.Vec512Heavy
	default:
		panic(fmt.Sprintf("core: invalid symbol %d", int(s)))
	}
}

// Level returns the paper's level name for the symbol (L4..L1; L1 is the
// most intense).
func (s Symbol) Level() string {
	return [NumSymbols]string{"L4", "L3", "L2", "L1"}[s]
}

// Kernel returns the sender loop kernel for the symbol.
func (s Symbol) Kernel() isa.Kernel { return isa.KernelFor(s.Class()) }

// SymbolsFromBits converts a bit slice (len must be even) into the symbol
// stream that transmits it, two bits per symbol, in order (hi, lo).
func SymbolsFromBits(bits []int) ([]Symbol, error) {
	if len(bits)%2 != 0 {
		return nil, fmt.Errorf("core: bit stream length %d is odd; symbols carry 2 bits", len(bits))
	}
	out := make([]Symbol, 0, len(bits)/2)
	for i := 0; i < len(bits); i += 2 {
		if bits[i]&^1 != 0 || bits[i+1]&^1 != 0 {
			return nil, fmt.Errorf("core: bit stream contains non-bit value at %d", i)
		}
		out = append(out, SymbolFromBits(bits[i], bits[i+1]))
	}
	return out, nil
}

// BitsFromSymbols flattens symbols back into bits (hi, lo per symbol).
func BitsFromSymbols(syms []Symbol) []int {
	out := make([]int, 0, 2*len(syms))
	for _, s := range syms {
		hi, lo := s.Bits()
		out = append(out, hi, lo)
	}
	return out
}

// Kind selects the channel variant.
type Kind int

const (
	// SameThread is IccThreadCovert (paper §4.1).
	SameThread Kind = iota
	// SMT is IccSMTcovert (paper §4.2).
	SMT
	// CrossCore is IccCoresCovert (paper §4.3).
	CrossCore
)

func (k Kind) String() string {
	switch k {
	case SameThread:
		return "IccThreadCovert"
	case SMT:
		return "IccSMTcovert"
	case CrossCore:
		return "IccCoresCovert"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ReceiverKernel returns the measurement loop the receiver runs for this
// channel kind (paper Fig. 3): 512b_Heavy on the same thread, a scalar
// 64b loop across SMT, and 128b_Heavy across cores.
func (k Kind) ReceiverKernel() isa.Kernel {
	switch k {
	case SameThread:
		return isa.Loop512Heavy
	case SMT:
		return isa.Loop64b
	case CrossCore:
		return isa.Loop128Heavy
	default:
		panic(fmt.Sprintf("core: invalid channel kind %d", int(k)))
	}
}

// Ascending reports whether the receiver's measurement grows with symbol
// intensity. Across SMT and cores, a more intense sender PHI throttles the
// receiver longer (ascending). On the same thread the relationship
// inverts: the more intense the sender's PHI, the less voltage remains to
// ramp for the receiver's 512b_Heavy loop (paper §4.1.2).
func (k Kind) Ascending() bool { return k != SameThread }
