package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ichannels/internal/isa"
	"ichannels/internal/model"
	"ichannels/internal/soc"
	"ichannels/internal/units"
)

func newQuietMachine(t *testing.T, seed int64) *soc.Machine {
	t.Helper()
	m, err := soc.New(soc.Options{
		Processor:     model.CannonLake8121U(),
		RequestedFreq: 2.2 * units.GHz,
		Seed:          seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestSymbolMappingMatchesPaperFig3(t *testing.T) {
	// Fig. 3: 00→128b_Heavy(L4), 01→256b_Light(L3), 10→256b_Heavy(L2),
	// 11→512b_Heavy(L1).
	want := map[Symbol]isa.Class{
		0: isa.Vec128Heavy, 1: isa.Vec256Light, 2: isa.Vec256Heavy, 3: isa.Vec512Heavy,
	}
	levels := map[Symbol]string{0: "L4", 1: "L3", 2: "L2", 3: "L1"}
	for s, cls := range want {
		if s.Class() != cls {
			t.Errorf("symbol %d → %v, want %v", int(s), s.Class(), cls)
		}
		if s.Level() != levels[s] {
			t.Errorf("symbol %d level %s, want %s", int(s), s.Level(), levels[s])
		}
		if s.Kernel().Class != cls {
			t.Errorf("symbol %d kernel class mismatch", int(s))
		}
	}
}

func TestSymbolBitsRoundTrip(t *testing.T) {
	f := func(raw uint8) bool {
		s := Symbol(raw % NumSymbols)
		hi, lo := s.Bits()
		return SymbolFromBits(hi, lo) == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSymbolsFromBitsRoundTrip(t *testing.T) {
	f := func(raw []byte) bool {
		bits := make([]int, (len(raw)/2)*2)
		for i := range bits {
			bits[i] = int(raw[i]) & 1
		}
		syms, err := SymbolsFromBits(bits)
		if err != nil {
			return false
		}
		back := BitsFromSymbols(syms)
		if len(back) != len(bits) {
			return false
		}
		for i := range bits {
			if back[i] != bits[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSymbolsFromBitsValidation(t *testing.T) {
	if _, err := SymbolsFromBits([]int{1}); err == nil {
		t.Fatal("odd length accepted")
	}
	if _, err := SymbolsFromBits([]int{1, 2}); err == nil {
		t.Fatal("non-bit accepted")
	}
}

func TestReceiverKernels(t *testing.T) {
	// Fig. 3: 512b_Heavy on same thread, 64b across SMT, 128b_Heavy
	// across cores.
	if SameThread.ReceiverKernel().Class != isa.Vec512Heavy {
		t.Error("same-thread receiver must run 512b_Heavy")
	}
	if SMT.ReceiverKernel().Class != isa.Scalar64 {
		t.Error("SMT receiver must run 64b")
	}
	if CrossCore.ReceiverKernel().Class != isa.Vec128Heavy {
		t.Error("cross-core receiver must run 128b_Heavy")
	}
}

func TestKindProperties(t *testing.T) {
	if SameThread.Ascending() {
		t.Error("same-thread measure decreases with symbol intensity")
	}
	if !SMT.Ascending() || !CrossCore.Ascending() {
		t.Error("SMT and cross-core measures increase with symbol intensity")
	}
	names := map[Kind]string{SameThread: "IccThreadCovert", SMT: "IccSMTcovert", CrossCore: "IccCoresCovert"}
	for k, n := range names {
		if k.String() != n {
			t.Errorf("%d name %q", int(k), k.String())
		}
	}
}

func TestParamsValidation(t *testing.T) {
	p := model.CannonLake8121U()
	for _, kind := range []Kind{SameThread, SMT, CrossCore} {
		pr := DefaultParams(kind, p)
		if err := pr.Validate(2, 2); err != nil {
			t.Errorf("%v default params invalid: %v", kind, err)
		}
	}
	// SMT channel on a non-SMT machine must be rejected.
	smt := DefaultParams(SMT, p)
	if smt.Validate(2, 1) == nil {
		t.Error("SMT channel on non-SMT machine accepted")
	}
	// Cross-core on one core must be rejected.
	cc := DefaultParams(CrossCore, p)
	if cc.Validate(1, 2) == nil {
		t.Error("cross-core channel on one core accepted")
	}
	// Same-thread with split placement must be rejected.
	st := DefaultParams(SameThread, p)
	st.ReceiverCore = 1
	if st.Validate(2, 2) == nil {
		t.Error("same-thread split placement accepted")
	}
	bad := DefaultParams(SameThread, p)
	bad.SlotPeriod = 0
	if bad.Validate(2, 2) == nil {
		t.Error("zero slot period accepted")
	}
}

func TestSlotPeriodCoversResetTime(t *testing.T) {
	p := model.CannonLake8121U()
	for _, kind := range []Kind{SameThread, SMT, CrossCore} {
		pr := DefaultParams(kind, p)
		if pr.SlotPeriod <= p.LicenseHysteresis {
			t.Errorf("%v slot %v must exceed the 650µs reset-time", kind, pr.SlotPeriod)
		}
	}
}

func TestCalibrationDecode(t *testing.T) {
	groups := [NumSymbols][]float64{
		{100, 110}, {200, 210}, {300, 310}, {400, 410},
	}
	cal, err := NewCalibration(groups)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < NumSymbols; s++ {
		if got := cal.Decode(groups[s][0] + 5); got != Symbol(s) {
			t.Errorf("decode(%g) = %v, want %v", groups[s][0]+5, got, Symbol(s))
		}
	}
	if !cal.Separable(50) {
		t.Error("clearly separated calibration not separable")
	}
	if cal.Separable(200) {
		t.Error("gap requirement ignored")
	}
}

func TestCalibrationDescendingMapping(t *testing.T) {
	// Same-thread ordering: higher symbol → smaller measure. Decode must
	// invert correctly.
	groups := [NumSymbols][]float64{
		{400, 410}, {300, 310}, {200, 210}, {100, 110},
	}
	cal, err := NewCalibration(groups)
	if err != nil {
		t.Fatal(err)
	}
	if got := cal.Decode(105); got != Symbol(3) {
		t.Fatalf("decode(105) = %v, want symbol 3", got)
	}
	if got := cal.Decode(405); got != Symbol(0) {
		t.Fatalf("decode(405) = %v, want symbol 0", got)
	}
}

func TestCalibrationRejectsDegenerate(t *testing.T) {
	var groups [NumSymbols][]float64
	for i := range groups {
		groups[i] = []float64{100} // identical means
	}
	if _, err := NewCalibration(groups); err == nil {
		t.Fatal("identical clusters accepted")
	}
	groups[0] = nil
	if _, err := NewCalibration(groups); err == nil {
		t.Fatal("empty group accepted")
	}
}

func TestChannelEndToEnd(t *testing.T) {
	for _, kind := range []Kind{SameThread, SMT, CrossCore} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			proc := model.CannonLake8121U()
			m := newQuietMachine(t, 3)
			ch, err := New(m, DefaultParams(kind, proc))
			if err != nil {
				t.Fatal(err)
			}
			cal, err := ch.Calibrate(6)
			if err != nil {
				t.Fatal(err)
			}
			// Fig. 13 property: levels separated by > 2000 cycles.
			if !cal.Separable(2000) {
				t.Fatalf("levels not separable by 2K cycles (gap %.0f)", cal.Gap)
			}
			rng := rand.New(rand.NewSource(9))
			bits := make([]int, 64)
			for i := range bits {
				bits[i] = rng.Intn(2)
			}
			res, err := ch.Transmit(bits)
			if err != nil {
				t.Fatal(err)
			}
			if res.BER != 0 {
				t.Fatalf("noise-free BER = %g", res.BER)
			}
			// §6.2: ≈2.9 kb/s channel capacity (model ≈2.8 kb/s).
			if res.ThroughputBPS < 2600 || res.ThroughputBPS > 3000 {
				t.Fatalf("throughput %.0f b/s outside the paper's band", res.ThroughputBPS)
			}
		})
	}
}

func TestSameThreadMeasureDescending(t *testing.T) {
	proc := model.CannonLake8121U()
	m := newQuietMachine(t, 4)
	ch, err := New(m, DefaultParams(SameThread, proc))
	if err != nil {
		t.Fatal(err)
	}
	cal, err := ch.Calibrate(4)
	if err != nil {
		t.Fatal(err)
	}
	// Multi-Throttling-Thread: the more intense the sent symbol, the
	// *less* voltage remains for the receiver's 512b_Heavy loop.
	for s := 1; s < NumSymbols; s++ {
		if cal.MeanCycles[s] >= cal.MeanCycles[s-1] {
			t.Fatalf("same-thread means not descending: %v", cal.MeanCycles)
		}
	}
}

func TestSMTAndCrossCoreMeasureAscending(t *testing.T) {
	proc := model.CannonLake8121U()
	for _, kind := range []Kind{SMT, CrossCore} {
		m := newQuietMachine(t, 5)
		ch, err := New(m, DefaultParams(kind, proc))
		if err != nil {
			t.Fatal(err)
		}
		cal, err := ch.Calibrate(4)
		if err != nil {
			t.Fatal(err)
		}
		for s := 1; s < NumSymbols; s++ {
			if cal.MeanCycles[s] <= cal.MeanCycles[s-1] {
				t.Fatalf("%v means not ascending: %v", kind, cal.MeanCycles)
			}
		}
	}
}

func TestTransmitRequiresCalibration(t *testing.T) {
	proc := model.CannonLake8121U()
	m := newQuietMachine(t, 6)
	ch, err := New(m, DefaultParams(CrossCore, proc))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ch.Transmit([]int{0, 1}); err == nil {
		t.Fatal("uncalibrated transmit accepted")
	}
}

func TestRunSymbolsValidation(t *testing.T) {
	proc := model.CannonLake8121U()
	m := newQuietMachine(t, 6)
	ch, err := New(m, DefaultParams(SameThread, proc))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ch.RunSymbols(nil); err == nil {
		t.Fatal("empty schedule accepted")
	}
	if _, err := ch.RunSymbols([]Symbol{Symbol(7)}); err == nil {
		t.Fatal("invalid symbol accepted")
	}
}

func TestBackToBackTransmissions(t *testing.T) {
	// The reset-time pacing must let a second transmission reuse the
	// machine with identical fidelity.
	proc := model.CannonLake8121U()
	m := newQuietMachine(t, 8)
	ch, err := New(m, DefaultParams(SameThread, proc))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ch.Calibrate(4); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		res, err := ch.Transmit([]int{1, 0, 0, 1, 1, 1, 0, 0})
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if res.BER != 0 {
			t.Fatalf("round %d BER %g", round, res.BER)
		}
	}
}

func TestSpyAccuracy(t *testing.T) {
	for _, kind := range []Kind{SMT, CrossCore} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			m := newQuietMachine(t, 10)
			spy, err := NewSpy(m, kind)
			if err != nil {
				t.Fatal(err)
			}
			if err := spy.Calibrate(4); err != nil {
				t.Fatal(err)
			}
			victim := []isa.Class{
				isa.Scalar64, isa.Vec512Heavy, isa.Vec128Heavy, isa.Vec256Heavy,
				isa.Vec512Heavy, isa.Scalar64, isa.Vec256Heavy, isa.Vec128Heavy,
			}
			res, err := spy.Infer(victim)
			if err != nil {
				t.Fatal(err)
			}
			if res.Accuracy < 0.99 {
				t.Fatalf("%v spy accuracy %.2f", kind, res.Accuracy)
			}
		})
	}
}

func TestSpyValidation(t *testing.T) {
	m := newQuietMachine(t, 11)
	if _, err := NewSpy(m, SameThread); err == nil {
		t.Fatal("same-thread spy makes no sense and must be rejected")
	}
	spy, err := NewSpy(m, SMT)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := spy.Infer([]isa.Class{isa.Scalar64}); err == nil {
		t.Fatal("uncalibrated inference accepted")
	}
	if err := spy.Calibrate(2); err != nil {
		t.Fatal(err)
	}
	if _, err := spy.Infer([]isa.Class{isa.Vec512Light}); err == nil {
		t.Fatal("non-calibrated width accepted")
	}
}
