package core

import (
	"fmt"
	"sort"

	"ichannels/internal/stats"
)

// Calibration holds the receiver's learned decision rule: the mean
// measurement (in TSC cycles) per symbol, the midpoint thresholds between
// adjacent clusters on the measurement axis, and the cluster→symbol
// mapping. The paper's receiver does exactly this: it case-matches the
// measured TP against four pre-learned ranges (Fig. 3, Fig. 13).
type Calibration struct {
	// MeanCycles is the mean receiver measurement for each symbol.
	MeanCycles [NumSymbols]float64
	// Thresholds are the NumSymbols-1 decision boundaries, ascending on
	// the measurement axis.
	Thresholds []float64
	// ClusterSymbol maps the i-th measurement cluster (ascending) to the
	// symbol it represents.
	ClusterSymbol [NumSymbols]Symbol
	// Gap is the smallest distance in cycles between the extremes of
	// adjacent clusters observed during calibration (Fig. 13's >2K-cycle
	// separation when positive).
	Gap float64
}

// NewCalibration builds a calibration from per-symbol measurement groups
// (groups[s] holds the calibration measurements for symbol s).
func NewCalibration(groups [NumSymbols][]float64) (*Calibration, error) {
	type cluster struct {
		sym      Symbol
		mean     float64
		min, max float64
	}
	clusters := make([]cluster, 0, NumSymbols)
	for s, g := range groups {
		if len(g) == 0 {
			return nil, fmt.Errorf("core: no calibration samples for symbol %d", s)
		}
		sum := stats.Summarize(g)
		clusters = append(clusters, cluster{Symbol(s), sum.Mean, sum.Min, sum.Max})
	}
	sort.Slice(clusters, func(i, j int) bool { return clusters[i].mean < clusters[j].mean })

	cal := &Calibration{}
	gap := 0.0
	for i, c := range clusters {
		cal.MeanCycles[c.sym] = c.mean
		cal.ClusterSymbol[i] = c.sym
		if i > 0 {
			cal.Thresholds = append(cal.Thresholds, (clusters[i-1].mean+c.mean)/2)
			g := c.min - clusters[i-1].max
			if i == 1 || g < gap {
				gap = g
			}
		}
	}
	cal.Gap = gap
	for i := 1; i < len(cal.Thresholds); i++ {
		if cal.Thresholds[i] <= cal.Thresholds[i-1] {
			return nil, fmt.Errorf("core: calibration clusters are not distinct (thresholds %v)", cal.Thresholds)
		}
	}
	return cal, nil
}

// Decode maps a receiver measurement (TSC cycles) to the nearest symbol.
func (c *Calibration) Decode(cycles float64) Symbol {
	i := sort.SearchFloat64s(c.Thresholds, cycles)
	return c.ClusterSymbol[i]
}

// Separable reports whether calibration observed non-overlapping clusters
// at least minGap cycles apart.
func (c *Calibration) Separable(minGap float64) bool { return c.Gap >= minGap }
