package core

import (
	"bytes"
	"testing"

	"ichannels/internal/model"
	"ichannels/internal/soc"
	"ichannels/internal/units"
)

func TestTransmitFrameCleanChannel(t *testing.T) {
	proc := model.CannonLake8121U()
	m := newQuietMachine(t, 21)
	ch, err := New(m, DefaultParams(SMT, proc))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ch.Calibrate(4); err != nil {
		t.Fatal(err)
	}
	payload := []byte("exfil")
	got, attempts, res, err := ch.TransmitFrame(payload, 7, 3)
	if err != nil {
		t.Fatal(err)
	}
	if attempts != 1 {
		t.Fatalf("clean channel needed %d attempts", attempts)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload %q", got)
	}
	if res.BER != 0 {
		t.Fatalf("BER %g", res.BER)
	}
}

func TestTransmitFrameRetriesUnderNoise(t *testing.T) {
	proc := model.CannonLake8121U()
	m, err := soc.New(soc.Options{
		Processor:       proc,
		RequestedFreq:   2.2 * units.GHz,
		Noise:           soc.WithRates(3000, 600),
		TSCJitterCycles: 250,
		Seed:            13,
	})
	if err != nil {
		t.Fatal(err)
	}
	ch, err := New(m, DefaultParams(SameThread, proc))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ch.Calibrate(8); err != nil {
		t.Fatal(err)
	}
	payload := []byte("key=42")
	got, attempts, _, err := ch.TransmitFrame(payload, 7, 8)
	if err != nil {
		t.Fatalf("unrecoverable after %d attempts: %v", attempts, err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload %q", got)
	}
}

func TestCapacityEstimate(t *testing.T) {
	// Error-free uniform transmission → ≈2 bits/symbol mutual info.
	proc := model.CannonLake8121U()
	m := newQuietMachine(t, 22)
	ch, err := New(m, DefaultParams(CrossCore, proc))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ch.Calibrate(4); err != nil {
		t.Fatal(err)
	}
	// Cycle through all four symbols uniformly: 00, 01, 10, 11, ...
	bits := make([]int, 64)
	for k := 0; k < len(bits)/2; k++ {
		bits[2*k] = (k >> 1) & 1
		bits[2*k+1] = k & 1
	}
	res, err := ch.Transmit(bits)
	if err != nil {
		t.Fatal(err)
	}
	cap2 := res.CapacityBitsPerSymbol()
	if cap2 < 1.9 || cap2 > 2.0 {
		t.Fatalf("capacity %.3f bits/symbol, want ≈2", cap2)
	}
	// ≈2.8 kb/s channel capacity (the paper's ~3 kb/s headline).
	if bps := res.CapacityBPS(); bps < 2600 || bps > 3000 {
		t.Fatalf("capacity %.0f b/s", bps)
	}
}

func TestConfusionDiagonalWhenClean(t *testing.T) {
	proc := model.CannonLake8121U()
	m := newQuietMachine(t, 23)
	ch, err := New(m, DefaultParams(SameThread, proc))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ch.Calibrate(4); err != nil {
		t.Fatal(err)
	}
	res, err := ch.Transmit([]int{0, 0, 0, 1, 1, 0, 1, 1, 0, 0, 0, 1, 1, 0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	m2 := res.Confusion()
	for s := 0; s < NumSymbols; s++ {
		for d := 0; d < NumSymbols; d++ {
			if s != d && m2[s][d] != 0 {
				t.Fatalf("off-diagonal confusion[%d][%d] = %d", s, d, m2[s][d])
			}
		}
	}
}

func TestEmptyResultCapacity(t *testing.T) {
	var r TransmitResult
	if r.CapacityBitsPerSymbol() != 0 || r.CapacityBPS() != 0 {
		t.Fatal("empty result must have zero capacity")
	}
}
