package sweep

import (
	"context"
	"encoding/json"
	"testing"

	"ichannels/internal/scenario"
	"ichannels/internal/store"
)

// kneeRun fabricates a BER sigmoid over the bits axis: flat zero below
// 40, a linear knee from 40 to 48, saturated 0.5 above — cheap cells
// with a known transition zone the controller must find.
func kneeRun(ctx context.Context, s scenario.Scenario, seed int64) (*scenario.Result, error) {
	ber := 0.0
	switch {
	case s.Bits >= 48:
		ber = 0.5
	case s.Bits > 40:
		ber = 0.5 * float64(s.Bits-40) / 8
	}
	return &scenario.Result{
		Role: s.Role, Hash: s.Hash(), Seed: seed, Bits: s.Bits,
		BER: ber, ThroughputBPS: float64(10 * s.Bits), ElapsedSimUS: 1,
	}, nil
}

// kneeSweep is a 32-point bits axis (2..64) with a refine block: stride
// 8, threshold 0.05, so only the 40–48 transition should densify.
func kneeSweep() scenario.Sweep {
	bits := make([]int, 32)
	for i := range bits {
		bits[i] = 2 * (i + 1)
	}
	return scenario.Sweep{
		Name:    "knee",
		Base:    scenario.Scenario{Role: scenario.RoleChannel, Kind: scenario.KindCores},
		Axes:    scenario.SweepAxes{Bits: bits},
		GroupBy: []string{scenario.AxisBits},
		Refine: &scenario.Refine{
			Metric: scenario.RefineMetricBER, Stride: map[string]int{scenario.AxisBits: 8},
			Threshold: 0.05,
		},
	}
}

// TestRefinedComputesOnlyMovingRegions: the controller finds the knee
// (every position whose local metric step exceeds the threshold is
// computed) while the flat regions stay at coarse resolution, well
// under half the dense grid.
func TestRefinedComputesOnlyMovingRegions(t *testing.T) {
	res, err := Run(context.Background(), kneeSweep(), Options{BaseSeed: 1, Parallel: 4, Run: kneeRun})
	if err != nil {
		t.Fatal(err)
	}
	ref := res.Refinement
	if ref == nil {
		t.Fatal("refined run carries no refinement stats")
	}
	if ref.DenseCells != 32 {
		t.Fatalf("dense cells %d, want 32", ref.DenseCells)
	}
	if ref.CellsComputed != len(res.Cells) {
		t.Fatalf("stats say %d cells, result has %d", ref.CellsComputed, len(res.Cells))
	}
	if ref.CellsComputed*2 > ref.DenseCells {
		t.Fatalf("refined run computed %d of %d cells — more than half the dense grid", ref.CellsComputed, ref.DenseCells)
	}
	computed := map[string]bool{}
	for _, c := range res.Cells {
		computed[c.Axes[scenario.AxisBits]] = true
	}
	// The knee (bits 40–48 exclusive of the flat ends' interiors) must
	// be locally dense: every axis value whose fabricated BER differs
	// from a neighbour's by ≥ threshold is computed.
	for _, want := range []string{"40", "42", "44", "46", "48"} {
		if !computed[want] {
			t.Errorf("knee cell bits=%s was not computed (have %v)", want, computed)
		}
	}
	// Deep flat zone stays coarse: stride-8 skips bits=6 (position 2).
	if computed["6"] {
		t.Errorf("flat-zone cell bits=6 was computed; flat regions should stay coarse")
	}
	if res.Aggregate.Cells != ref.CellsComputed {
		t.Errorf("aggregate covers %d cells, want %d", res.Aggregate.Cells, ref.CellsComputed)
	}
}

// TestRefinedDeterministicAcrossParallelism: the full refined Result —
// per-pass cell order, summaries, aggregate, refinement stats — is
// byte-identical at any pool size.
func TestRefinedDeterministicAcrossParallelism(t *testing.T) {
	marshal := func(parallel int) []byte {
		res, err := Run(context.Background(), kneeSweep(), Options{BaseSeed: 7, Parallel: parallel, Run: kneeRun})
		if err != nil {
			t.Fatal(err)
		}
		res.Parallel = 0 // wall-clock envelope field
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	serial := marshal(1)
	for _, p := range []int{4, 8} {
		if got := marshal(p); string(got) != string(serial) {
			t.Fatalf("parallel-%d refined result differs from serial:\n%s\nvs\n%s", p, got, serial)
		}
	}
}

// TestRefinedBudgetTruncation: a per-pass budget defers cells without
// breaking determinism; every pass respects the cap and the truncation
// is recorded.
func TestRefinedBudgetTruncation(t *testing.T) {
	sw := kneeSweep()
	sw.Refine.MaxCellsPerPass = 3
	sw.Refine.MaxPasses = scenario.MaxRefinePasses
	run := func(parallel int) *Result {
		res, err := Run(context.Background(), sw, Options{BaseSeed: 1, Parallel: parallel, Run: kneeRun})
		if err != nil {
			t.Fatal(err)
		}
		res.Parallel = 0 // wall-clock envelope field
		return res
	}
	res := run(2)
	truncated := 0
	for _, p := range res.Refinement.Passes {
		if p.Cells > 3 {
			t.Errorf("pass %d ran %d cells, budget is 3", p.Pass, p.Cells)
		}
		truncated += p.Truncated
	}
	if truncated == 0 {
		t.Fatalf("expected the 6-cell coarse skeleton to exceed the budget of 3; passes: %+v", res.Refinement.Passes)
	}
	a, _ := json.Marshal(res)
	b, _ := json.Marshal(run(8))
	if string(a) != string(b) {
		t.Fatal("budgeted refined run is not parallelism-invariant")
	}
}

// TestRefinedBudgetNeverStrandsGroupCells: when the per-pass budget
// cuts a pass mid-group, the deferred cells must run in a later pass —
// a selected group may never end up permanently partial (its aggregate
// row would silently mix sample-set sizes).
func TestRefinedBudgetNeverStrandsGroupCells(t *testing.T) {
	bits := make([]int, 16)
	for i := range bits {
		bits[i] = 2 * (i + 1)
	}
	sw := scenario.Sweep{
		Name: "strand",
		Base: scenario.Scenario{Role: scenario.RoleChannel, Kind: scenario.KindCores},
		Axes: scenario.SweepAxes{
			Bits:      bits,
			Processor: []string{"Cannon Lake", "Haswell", "Coffee Lake"},
		},
		// processor is NOT grouped: each bits group holds 3 cells, so a
		// budget of 4 is guaranteed to split a group on every pass.
		GroupBy: []string{scenario.AxisBits},
		Refine: &scenario.Refine{
			Stride: map[string]int{scenario.AxisBits: 4}, Threshold: 0.05,
			MaxCellsPerPass: 4, MaxPasses: scenario.MaxRefinePasses,
		},
	}
	res, err := Run(context.Background(), sw, Options{BaseSeed: 1, Parallel: 4, Run: kneeRun})
	if err != nil {
		t.Fatal(err)
	}
	perGroup := map[string]int{}
	for _, c := range res.Cells {
		perGroup[c.Axes[scenario.AxisBits]]++
	}
	for v, n := range perGroup {
		if n != 3 {
			t.Errorf("group bits=%s computed %d of its 3 cells — budget truncation stranded the rest", v, n)
		}
	}
	truncated := 0
	for _, p := range res.Refinement.Passes {
		if p.Cells > 4 {
			t.Errorf("pass %d ran %d cells, budget is 4", p.Pass, p.Cells)
		}
		truncated += p.Truncated
	}
	if truncated == 0 {
		t.Fatalf("budget never split a pass; the test exercised nothing (passes: %+v)", res.Refinement.Passes)
	}
}

// TestRefinedKilledAndResumed: a refined sweep killed mid-run resumes
// from its store with a byte-identical final aggregate and refinement
// record, recomputing only what the first run never persisted.
func TestRefinedKilledAndResumed(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sw := kneeSweep()

	// Reference: one uninterrupted run, no store.
	want, err := Run(context.Background(), sw, Options{BaseSeed: 5, Parallel: 1, Run: kneeRun})
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, _ := json.Marshal(want.Aggregate)
	wantRef, _ := json.Marshal(want.Refinement)

	// Kill the first run after 4 cells (mid-coarse-pass).
	kill := errKill{}
	n := 0
	_, err = Run(context.Background(), sw, Options{
		BaseSeed: 5, Parallel: 1, Run: kneeRun, Store: st,
		OnCell: func(CellOutcome) error {
			n++
			if n >= 4 {
				return kill
			}
			return nil
		},
	})
	if err == nil {
		t.Fatal("killed run reported success")
	}

	// Resume: the surviving cells come back from the store.
	res, err := Run(context.Background(), sw, Options{BaseSeed: 5, Parallel: 4, Run: kneeRun, Store: st})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cached == 0 {
		t.Fatal("resumed run served nothing from the store")
	}
	gotJSON, _ := json.Marshal(res.Aggregate)
	gotRef, _ := json.Marshal(res.Refinement)
	if string(gotJSON) != string(wantJSON) {
		t.Fatalf("resumed aggregate differs:\n%s\nwant:\n%s", gotJSON, wantJSON)
	}
	if string(gotRef) != string(wantRef) {
		t.Fatalf("resumed refinement record differs:\n%s\nwant:\n%s", gotRef, wantRef)
	}
}

type errKill struct{}

func (errKill) Error() string { return "killed" }

// TestRefinedPassMarkers: OnPass fires once per pass, before that
// pass's first cell, with headers matching the recorded stats.
func TestRefinedPassMarkers(t *testing.T) {
	var markers []PassStats
	var cellPasses []int
	res, err := Run(context.Background(), kneeSweep(), Options{
		BaseSeed: 1, Parallel: 4, Run: kneeRun,
		OnPass: func(p PassStats) error {
			markers = append(markers, p)
			return nil
		},
		OnCell: func(o CellOutcome) error {
			cellPasses = append(cellPasses, o.Pass)
			if o.Pass != markers[len(markers)-1].Pass {
				t.Errorf("cell pass %d arrived under marker %d", o.Pass, markers[len(markers)-1].Pass)
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(markers) != len(res.Refinement.Passes) {
		t.Fatalf("%d markers for %d passes", len(markers), len(res.Refinement.Passes))
	}
	for i, m := range markers {
		if m != res.Refinement.Passes[i] {
			t.Errorf("marker %d = %+v, recorded %+v", i, m, res.Refinement.Passes[i])
		}
	}
	counts := map[int]int{}
	for _, p := range cellPasses {
		counts[p]++
	}
	for _, m := range markers {
		if counts[m.Pass] != m.Cells {
			t.Errorf("pass %d streamed %d cells, marker says %d", m.Pass, counts[m.Pass], m.Cells)
		}
	}
}
