package sweep

import (
	"context"
	"sort"

	"ichannels/internal/scenario"
)

// PassStats is the deterministic header of one executed pass of a
// refined sweep: which pass, how many cells it runs, and how the
// per-pass budget shaped it. It is both a Result record and the NDJSON
// pass marker's payload.
type PassStats struct {
	// Pass numbers the passes; 0 is the coarse pass.
	Pass int `json:"pass"`
	// Cells is how many cells this pass computes (post-truncation).
	Cells int `json:"cells"`
	// Candidates is how many cells were eligible before the per-pass
	// budget; Truncated = Candidates - Cells cells were deferred (they
	// remain eligible next pass).
	Candidates int `json:"candidates"`
	Truncated  int `json:"truncated,omitempty"`
}

// RefinementStats records the shape of one adaptive run: the watched
// metric, the passes executed, and the computed-vs-dense cell counts
// the ROADMAP's "65k-cell sweep mostly recomputes flat regions" item
// asks to surface. Like the aggregate, it is a pure function of
// (sweep, base seed) — wall-clock never enters it.
type RefinementStats struct {
	Metric    string  `json:"metric"`
	Threshold float64 `json:"threshold"`
	// DenseCells is the post-filter size of the full grid; CellsComputed
	// how many of them the adaptive run actually simulated.
	DenseCells    int         `json:"dense_cells"`
	CellsComputed int         `json:"cells_computed"`
	Passes        []PassStats `json:"passes"`
}

// refiner holds the immutable geometry of one refined run.
type refiner struct {
	nsw     scenario.Sweep
	ref     *scenario.Refine
	groupBy []string
	// axisPos maps each refined axis's value label to its position on
	// the axis; axisVal is the inverse. Labels are unique per axis
	// (validated) and cells carry normalized labels, so the recovery is
	// exact.
	axisPos map[string]map[string]int
	axisVal map[string][]string
	// restBy caches, per refined axis, the group_by list with that axis
	// removed — the "context" key of an interval along the axis.
	restBy map[string][]string
	// hashCache memoizes each dense cell's content hash across passes
	// (every pass walks the dense grid; the hash is the walk's most
	// expensive per-cell step). denseCells is the post-filter grid
	// size, counted on the first walk.
	hashCache  map[int]string
	denseCells int
}

// runRefined executes a sweep with a refine block: a coarse strided
// pass, then midpoint expansion of every group_by region whose metric
// moves, until the regions flatten, the grid is locally dense, or the
// pass cap is reached. nsw must be normalized and validated.
func runRefined(ctx context.Context, nsw scenario.Sweep, opts Options) (*Result, error) {
	r, err := newRefiner(nsw)
	if err != nil {
		return nil, err
	}
	st := newExecState(nsw, opts)
	stats := &RefinementStats{
		Metric: r.ref.Metric, Threshold: r.ref.Threshold,
	}
	computed := map[int]bool{}
	// pending carries cells a pass selected but the budget deferred:
	// they stay selected until run, so truncation mid-group can never
	// strand part of a group (the aggregate would silently mix full and
	// partial sample sets otherwise).
	pending := map[int]bool{}

	// candidates selects the next pass's cells beyond the coarse
	// skeleton and the deferred backlog: the scored midpoint groups.
	// Candidate groups are full group_by keys; nil means "coarse (and
	// pending) only" — the first pass.
	var candidates map[string]bool
	for pass := 0; pass <= r.ref.MaxPasses; pass++ {
		cells, err := r.collect(computed, pending, candidates)
		if err != nil {
			return nil, err
		}
		if stats.DenseCells == 0 {
			stats.DenseCells = r.denseCells
		}
		if len(cells) == 0 {
			break
		}
		ps := PassStats{Pass: pass, Candidates: len(cells)}
		if b := r.ref.MaxCellsPerPass; len(cells) > b {
			// Deterministic truncation: the hash order the cells are
			// already sorted in. The deferred suffix joins pending and
			// is re-collected until it runs.
			for _, c := range cells[b:] {
				pending[c.Index] = true
			}
			cells = cells[:b]
		}
		ps.Cells = len(cells)
		ps.Truncated = ps.Candidates - ps.Cells
		stats.Passes = append(stats.Passes, ps)
		if opts.OnPass != nil {
			if err := opts.OnPass(ps); err != nil {
				return nil, err
			}
		}
		i := 0
		next := func() (scenario.Cell, bool, error) {
			if i >= len(cells) {
				return scenario.Cell{}, false, nil
			}
			c := cells[i]
			i++
			return c, true, nil
		}
		if err := st.execute(ctx, next, pass); err != nil {
			return nil, err
		}
		for _, c := range cells {
			computed[c.Index] = true
			delete(pending, c.Index)
		}
		candidates = r.score(st.agg)
	}
	stats.CellsComputed = len(st.res.Cells)
	st.res.Refinement = stats
	res := st.finish()
	return res, nil
}

// newRefiner derives the axis geometry from the normalized sweep.
func newRefiner(nsw scenario.Sweep) (*refiner, error) {
	r := &refiner{
		nsw:       nsw,
		ref:       nsw.Refine,
		groupBy:   nsw.EffectiveGroupBy(),
		axisPos:   map[string]map[string]int{},
		axisVal:   map[string][]string{},
		restBy:    map[string][]string{},
		hashCache: map[int]string{},
	}
	labels, err := nsw.AxisLabels()
	if err != nil {
		return nil, err
	}
	for axis := range r.ref.Stride {
		vals := labels[axis]
		pos := make(map[string]int, len(vals))
		for i, v := range vals {
			pos[v] = i
		}
		r.axisPos[axis] = pos
		r.axisVal[axis] = vals
		rest := make([]string, 0, len(r.groupBy)-1)
		for _, g := range r.groupBy {
			if g != axis {
				rest = append(rest, g)
			}
		}
		r.restBy[axis] = rest
	}
	return r, nil
}

// coarse reports whether a cell belongs to the coarse skeleton: every
// refined axis sits on a stride multiple or the axis endpoint.
func (r *refiner) coarse(axes map[string]string) bool {
	for axis, s := range r.ref.Stride {
		p := r.axisPos[axis][axes[axis]]
		if p%s != 0 && p != len(r.axisVal[axis])-1 {
			return false
		}
	}
	return true
}

// collect walks the dense grid once and gathers the next pass's cells:
// uncomputed cells that are in the coarse skeleton, deferred from an
// earlier pass's budget, or in a candidate group. The result is sorted
// by scenario content hash (ties by dense index) — the deterministic
// dispatch and budget-truncation order.
func (r *refiner) collect(computed, pending map[int]bool, candidates map[string]bool) ([]scenario.Cell, error) {
	type keyed struct {
		cell scenario.Cell
		hash string
	}
	var out []keyed
	n := 0
	err := r.nsw.EachCell(func(c scenario.Cell) error {
		n++
		if computed[c.Index] {
			return nil
		}
		if !pending[c.Index] && !r.coarse(c.Axes) && !candidates[groupID(r.groupBy, c.Axes)] {
			return nil
		}
		h, ok := r.hashCache[c.Index]
		if !ok {
			h = c.Scenario.Hash()
			r.hashCache[c.Index] = h
		}
		out = append(out, keyed{cell: c, hash: h})
		return nil
	})
	if err != nil {
		return nil, err
	}
	r.denseCells = n
	sort.Slice(out, func(i, j int) bool {
		if out[i].hash != out[j].hash {
			return out[i].hash < out[j].hash
		}
		return out[i].cell.Index < out[j].cell.Index
	})
	cells := make([]scenario.Cell, len(out))
	for i, k := range out {
		cells[i] = k.cell
	}
	return cells, nil
}

// score inspects the cumulative aggregate and returns the group keys to
// expand next: for every refined axis and every context (the other
// group_by axes), adjacent computed positions whose interval still has
// a gap and whose metric moved by at least the threshold contribute
// their midpoint group.
func (r *refiner) score(agg *Aggregator) map[string]bool {
	out := map[string]bool{}
	for axis := range r.ref.Stride {
		rest := r.restBy[axis]
		// Bucket the aggregator's groups by context, keeping only those
		// with at least one successful sample (errors carry no metric).
		type point struct {
			pos  int
			mean float64
			span float64
		}
		byContext := map[string][]point{}
		contextKey := map[string]map[string]string{}
		for _, acc := range agg.groups {
			xs := acc.metricSamples(r.ref.Metric)
			if len(xs) == 0 {
				continue
			}
			mean, lo, hi := meanMinMax(xs)
			ctx := groupID(rest, acc.key)
			byContext[ctx] = append(byContext[ctx], point{
				pos: r.axisPos[axis][acc.key[axis]], mean: mean, span: hi - lo,
			})
			if _, ok := contextKey[ctx]; !ok {
				contextKey[ctx] = acc.key
			}
		}
		ctxs := make([]string, 0, len(byContext))
		for ctx := range byContext {
			ctxs = append(ctxs, ctx)
		}
		sort.Strings(ctxs)
		for _, ctx := range ctxs {
			pts := byContext[ctx]
			sort.Slice(pts, func(i, j int) bool { return pts[i].pos < pts[j].pos })
			for i := 0; i+1 < len(pts); i++ {
				a, b := pts[i], pts[i+1]
				if b.pos-a.pos < 2 {
					continue // locally dense already
				}
				score := b.mean - a.mean
				if score < 0 {
					score = -score
				}
				if a.span > score {
					score = a.span
				}
				if b.span > score {
					score = b.span
				}
				if score < r.ref.Threshold {
					continue // flat region: stays coarse
				}
				mid := (a.pos + b.pos) / 2
				key := make(map[string]string, len(r.groupBy))
				for _, g := range rest {
					key[g] = contextKey[ctx][g]
				}
				key[axis] = r.axisVal[axis][mid]
				out[groupID(r.groupBy, key)] = true
			}
		}
	}
	return out
}

// metricSamples returns the group's samples of the refinement metric.
func (acc *groupAcc) metricSamples(metric string) []float64 {
	if metric == scenario.RefineMetricThroughput {
		return acc.bps
	}
	return acc.ber
}

// meanMinMax reduces xs without allocating (the aggregator's Metric
// rendering is for tables; scoring only needs these three).
func meanMinMax(xs []float64) (mean, lo, hi float64) {
	lo, hi = xs[0], xs[0]
	var sum float64
	for _, x := range xs {
		sum += x
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return sum / float64(len(xs)), lo, hi
}
