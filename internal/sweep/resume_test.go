package sweep

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"sync/atomic"
	"testing"

	"ichannels/internal/scenario"
	"ichannels/internal/store"
)

// marshalAggregate renders the aggregate's NDJSON framing — the bytes
// both the CLI and POST /v1/sweeps emit as the final line.
func marshalAggregate(t *testing.T, tab *Table) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteAggregateLine(&buf, tab); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSweepResumeRecomputesOnlyMissing is the resume acceptance test:
// a sweep killed mid-grid leaves its completed cells in the store, and
// the re-run computes exactly the missing ones while producing
// byte-identical output to an uninterrupted run. Both directory
// layouts must satisfy it through the identical store.Store surface.
func TestSweepResumeRecomputesOnlyMissing(t *testing.T) {
	openers := map[string]func(dir string) (store.Store, error){
		"perfile": func(dir string) (store.Store, error) { return store.Open(dir) },
		"packed":  func(dir string) (store.Store, error) { return store.OpenPacked(dir) },
	}
	for name, open := range openers {
		t.Run(name, func(t *testing.T) { testSweepResume(t, open) })
	}
}

func testSweepResume(t *testing.T, open func(dir string) (store.Store, error)) {
	sw := testSweep() // 8 cells
	const cells = 8
	st, err := open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer store.CloseStore(st)
	var calls atomic.Int64
	run := func(ctx context.Context, s scenario.Scenario, seed int64) (*scenario.Result, error) {
		calls.Add(1)
		return fakeRun(ctx, s, seed)
	}
	opts := func() Options { return Options{BaseSeed: 3, Parallel: 2, Run: run} }

	// Reference: one uninterrupted run, no store.
	ref, err := Run(context.Background(), sw, opts())
	if err != nil {
		t.Fatal(err)
	}
	refAgg := marshalAggregate(t, ref.Aggregate)
	refCells, _ := json.Marshal(ref.Cells)

	// "Kill" the sweep after 3 emitted cells: the OnCell error stops
	// the stream the way a dying process would, except in-flight cells
	// still drain — each of them was persisted before it completed.
	errKilled := errors.New("killed")
	calls.Store(0)
	killed := 0
	// A serial, window-1 pipeline keeps the number of drained in-flight
	// cells strictly below the grid, so the re-run has real work left.
	kopts := Options{BaseSeed: 3, Parallel: 1, Window: 1, Run: run}.WithStore(st)
	kopts.OnCell = func(CellOutcome) error {
		killed++
		if killed >= 3 {
			return errKilled
		}
		return nil
	}
	if _, err := Run(context.Background(), sw, kopts); !errors.Is(err, errKilled) {
		t.Fatalf("killed run returned %v, want %v", err, errKilled)
	}
	survived := int(calls.Load())
	if survived < 3 || survived >= cells {
		t.Fatalf("killed run computed %d cells, want a strict mid-grid subset of %d", survived, cells)
	}

	// Resume: every surviving cell comes from the store, only the
	// missing ones compute, and the output matches the reference
	// byte for byte.
	calls.Store(0)
	res, err := Run(context.Background(), sw, opts().WithStore(st))
	if err != nil {
		t.Fatal(err)
	}
	if got := int(calls.Load()); got != cells-survived {
		t.Errorf("resume computed %d cells, want exactly the %d missing", got, cells-survived)
	}
	if res.Cached != survived {
		t.Errorf("resume served %d cells from the store, want %d", res.Cached, survived)
	}
	if got := marshalAggregate(t, res.Aggregate); !bytes.Equal(got, refAgg) {
		t.Errorf("resumed aggregate differs from uninterrupted run:\n%s\n%s", got, refAgg)
	}
	if got, _ := json.Marshal(res.Cells); !bytes.Equal(got, refCells) {
		t.Errorf("resumed cell summaries differ from uninterrupted run:\n%s\n%s", got, refCells)
	}

	// A second resume is a pure replay: zero computes, all cached.
	calls.Store(0)
	res, err = Run(context.Background(), sw, opts().WithStore(st))
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 0 || res.Cached != cells {
		t.Errorf("full replay: %d computes, %d cached; want 0/%d", calls.Load(), res.Cached, cells)
	}
	if got := marshalAggregate(t, res.Aggregate); !bytes.Equal(got, refAgg) {
		t.Errorf("replayed aggregate differs from uninterrupted run")
	}
}

// TestSweepWriteOnlyStoreRecomputes: -store without -resume semantics —
// everything recomputes, everything persists.
func TestSweepWriteOnlyStoreRecomputes(t *testing.T) {
	sw := testSweep()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int64
	run := func(ctx context.Context, s scenario.Scenario, seed int64) (*scenario.Result, error) {
		calls.Add(1)
		return fakeRun(ctx, s, seed)
	}
	for round := 1; round <= 2; round++ {
		calls.Store(0)
		res, err := Run(context.Background(), sw, Options{BaseSeed: 3, Parallel: 2, Run: run}.WithStore(store.WriteOnly(st)))
		if err != nil {
			t.Fatal(err)
		}
		if calls.Load() != 8 || res.Cached != 0 {
			t.Fatalf("round %d: %d computes, %d cached; want 8/0", round, calls.Load(), res.Cached)
		}
	}
	if entries, err := st.List(); err != nil || len(entries) != 8 {
		t.Fatalf("store holds %d entries (%v), want 8", len(entries), err)
	}
}
