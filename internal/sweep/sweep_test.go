package sweep

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"ichannels/internal/engine"
	"ichannels/internal/scenario"
)

// fakeRun is a cheap deterministic executor: BER and throughput are
// pure functions of the spec and seed, so aggregates are checkable.
func fakeRun(ctx context.Context, s scenario.Scenario, seed int64) (*scenario.Result, error) {
	ber := 0.0
	if s.Mitigation == scenario.MitigationSecureMode {
		ber = 0.5
	}
	return &scenario.Result{
		Role: s.Role, Hash: s.Hash(), Seed: seed, Bits: s.Bits,
		BER: ber, ThroughputBPS: float64(100 * s.Bits), ElapsedSimUS: float64(s.Bits),
	}, nil
}

// testSweep is a 2×2×2 grid over processor × mitigation × bits.
func testSweep() scenario.Sweep {
	return scenario.Sweep{
		Name: "unit",
		Base: scenario.Scenario{Role: scenario.RoleMitigation, Kind: scenario.KindCores},
		Axes: scenario.SweepAxes{
			Processor:  []string{"Cannon Lake", "Haswell"},
			Mitigation: []string{scenario.MitigationNone, scenario.MitigationSecureMode},
			Bits:       []int{8, 16},
		},
		GroupBy: []string{scenario.AxisMitigation},
	}
}

// TestRunAggregatesByAxisSubset: grouping by mitigation collapses
// processor and bits; metrics come out of the stats toolkit.
func TestRunAggregatesByAxisSubset(t *testing.T) {
	res, err := Run(context.Background(), testSweep(), Options{BaseSeed: 3, Parallel: 4, Run: fakeRun})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 8 || res.Failed != 0 {
		t.Fatalf("ran %d cells (%d failed), want 8/0", len(res.Cells), res.Failed)
	}
	agg := res.Aggregate
	if agg.Cells != 8 || agg.Errors != 0 {
		t.Fatalf("aggregate counts %d/%d, want 8/0", agg.Cells, agg.Errors)
	}
	if len(agg.Groups) != 2 {
		t.Fatalf("grouped into %d groups, want 2 (mitigations)", len(agg.Groups))
	}
	// Groups sort by key value: "none" < "secure-mode".
	none, secure := agg.Groups[0], agg.Groups[1]
	if none.Key[scenario.AxisMitigation] != scenario.MitigationNone ||
		secure.Key[scenario.AxisMitigation] != scenario.MitigationSecureMode {
		t.Fatalf("group keys %v / %v", none.Key, secure.Key)
	}
	if none.Cells != 4 || secure.Cells != 4 {
		t.Errorf("group sizes %d/%d, want 4/4", none.Cells, secure.Cells)
	}
	if none.BER.Mean != 0 || secure.BER.Mean != 0.5 || secure.BER.Min != 0.5 || secure.BER.P95 != 0.5 {
		t.Errorf("BER reduction wrong: none=%+v secure=%+v", none.BER, secure.BER)
	}
	// bits ∈ {8,16} ⇒ bps ∈ {800,1600}: mean 1200, min 800, max 1600.
	if none.ThroughputBPS.Mean != 1200 || none.ThroughputBPS.Min != 800 || none.ThroughputBPS.Max != 1600 {
		t.Errorf("throughput reduction wrong: %+v", none.ThroughputBPS)
	}
}

// TestRunDeterministicAcrossParallelism: the whole Result JSON —
// summaries and aggregate — is byte-identical at any pool size, and
// cells stream in expansion order.
func TestRunDeterministicAcrossParallelism(t *testing.T) {
	render := func(parallel int) string {
		var order []int
		res, err := Run(context.Background(), testSweep(), Options{
			BaseSeed: 9, Parallel: parallel, Window: 2, Run: fakeRun,
			OnCell: func(o CellOutcome) error { order = append(order, o.Cell.Index); return nil },
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, idx := range order {
			if i != idx {
				t.Fatalf("parallel=%d: cell %d streamed at position %d", parallel, idx, i)
			}
		}
		res.Parallel = 0 // wall-clock envelope field
		var buf bytes.Buffer
		if err := res.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	serial := render(1)
	if parallel := render(8); parallel != serial {
		t.Error("sweep result JSON differs between serial and parallel")
	}
}

// TestRunCellFailuresCounted: a failing cell lands in the summaries and
// the aggregate's error counts, and contributes no metric samples.
func TestRunCellFailuresCounted(t *testing.T) {
	res, err := Run(context.Background(), testSweep(), Options{
		BaseSeed: 1, Parallel: 2,
		Run: func(ctx context.Context, s scenario.Scenario, seed int64) (*scenario.Result, error) {
			if s.Processor == "Haswell" {
				return nil, fmt.Errorf("synthetic")
			}
			return fakeRun(ctx, s, seed)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 4 {
		t.Fatalf("failed = %d, want 4 (the Haswell half)", res.Failed)
	}
	agg := res.Aggregate
	if agg.Errors != 4 {
		t.Errorf("aggregate errors = %d, want 4", agg.Errors)
	}
	for _, g := range agg.Groups {
		if g.Cells != 4 || g.Errors != 2 {
			t.Errorf("group %v: %d cells / %d errors, want 4/2", g.Key, g.Cells, g.Errors)
		}
	}
	errored := 0
	for _, c := range res.Cells {
		if c.Error != "" {
			errored++
			if c.BER != 0 || c.ThroughputBPS != 0 {
				t.Errorf("failed cell %d carries metrics", c.Index)
			}
		}
	}
	if errored != 4 {
		t.Errorf("%d summaries carry errors, want 4", errored)
	}
}

// TestRunStreamsBoundedQueue: the pending-cell FIFO tracks the engine
// window, so the sweep holds no envelope beyond the hook call. (The
// strict memory bound itself is asserted in engine.TestStreamBoundedMemory;
// here we check the sweep keeps only compact summaries: no result
// envelope reachable from Result.)
func TestRunStreamsBoundedQueue(t *testing.T) {
	res, err := Run(context.Background(), testSweep(), Options{BaseSeed: 2, Window: 1, Run: fakeRun})
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(b), "sent_bits") {
		t.Error("sweep result retains full envelopes")
	}
}

// TestAggregateLineFraming: the aggregate's NDJSON framing round-trips
// and is stable for a fixed sweep/seed — the byte-level contract the
// HTTP layer shares.
func TestAggregateLineFraming(t *testing.T) {
	run := func() string {
		res, err := Run(context.Background(), testSweep(), Options{BaseSeed: 5, Parallel: 3, Run: fakeRun})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteAggregateLine(&buf, res.Aggregate); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := run(), run()
	if a != b {
		t.Error("aggregate line not reproducible")
	}
	var line struct {
		Aggregate *Table `json:"aggregate"`
	}
	if err := json.Unmarshal([]byte(a), &line); err != nil || line.Aggregate == nil {
		t.Fatalf("aggregate line does not round-trip: %v", err)
	}
	if line.Aggregate.BaseSeed != 5 || line.Aggregate.Cells != 8 {
		t.Errorf("aggregate line payload wrong: %+v", line.Aggregate)
	}
}

// TestOnCellErrorStopsSweep: the hook's error aborts the run.
func TestOnCellErrorStopsSweep(t *testing.T) {
	boom := fmt.Errorf("sink closed")
	_, err := Run(context.Background(), testSweep(), Options{
		Run:    fakeRun,
		OnCell: func(CellOutcome) error { return boom },
	})
	if err != boom {
		t.Errorf("err = %v, want the hook error", err)
	}
}

// TestRunRealScenarios: a tiny real grid (no injected runner) flows end
// to end and group keys match the envelope values.
func TestRunRealScenarios(t *testing.T) {
	sw := scenario.Sweep{
		Base: scenario.Scenario{Role: scenario.RoleChannel, Kind: scenario.KindCores, Bits: 8},
		Axes: scenario.SweepAxes{Processor: []string{"Cannon Lake", "Core i7-4770K"}},
	}
	res, err := Run(context.Background(), sw, Options{BaseSeed: 1, Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 0 || len(res.Cells) != 2 {
		t.Fatalf("real grid: %d cells, %d failed", len(res.Cells), res.Failed)
	}
	if len(res.Aggregate.Groups) != 2 {
		t.Fatalf("want one group per processor, got %d", len(res.Aggregate.Groups))
	}
	// Marketing name normalized to code name in the group key.
	if res.Aggregate.Groups[1].Key[scenario.AxisProcessor] != "Haswell" {
		t.Errorf("group key %v not normalized", res.Aggregate.Groups[1].Key)
	}
	// Seeds derive from the engine's scenario derivation.
	cell0 := res.Cells[0]
	spec := scenario.Scenario{Role: scenario.RoleChannel, Kind: scenario.KindCores, Bits: 8, Processor: "Cannon Lake"}
	if want := engine.DeriveScenarioSeed(1, spec); cell0.Seed != want {
		t.Errorf("cell seed %d, want derived %d", cell0.Seed, want)
	}
}

// TestTableWriteText: the text table lists one aligned row per group.
func TestTableWriteText(t *testing.T) {
	res, err := Run(context.Background(), testSweep(), Options{BaseSeed: 1, Run: fakeRun})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"mitigation", "secure-mode", "aggregate (group by mitigation)", "BER mean"} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
}
