// Package sweep executes declarative parameter grids (scenario.Sweep)
// and reduces their per-cell results into the paper's table shapes:
// grouped aggregates of BER, throughput, and simulated time over any
// subset of the sweep's axes.
//
// Execution streams: cells are expanded lazily (scenario.CellIterator),
// run through the engine's bounded-memory streaming core
// (engine.StreamScenarios), and folded into the aggregator as they
// complete — peak memory is O(workers + window), not O(grid). Only
// compact per-cell summaries (a handful of scalars each) and the
// aggregate's metric samples are retained; the full result envelopes
// (bit streams included) are handed to the OnCell hook and dropped.
//
// Determinism: for a fixed (sweep, base seed) the cell order, every
// per-cell result, and the aggregate table's JSON encoding are
// byte-identical at any parallelism — the same contract the scenario
// layer has, extended over grids. The HTTP layer (POST /v1/sweeps) and
// the CLI (ichannels sweep run) both end in Table, so their aggregate
// output is comparable byte-for-byte.
package sweep

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"ichannels/internal/engine"
	"ichannels/internal/scenario"
	"ichannels/internal/soc"
	"ichannels/internal/stats"
	"ichannels/internal/store"
)

// Options configures a sweep run.
type Options struct {
	// BaseSeed derives per-cell seeds for cells whose spec pins none
	// (the sweep base's pinned seed wins, like any scenario batch).
	BaseSeed int64
	// Parallel is the worker-pool size. Values below 1 mean serial.
	Parallel int
	// Window bounds the engine's reorder buffer (0 = engine default).
	Window int
	// Run overrides the scenario executor (nil means scenario.Run).
	Run engine.ScenarioRunFunc
	// Runner, when set, takes precedence over Run — the hash-aware
	// compute seam (engine.StreamOptions.Runner). Setting it to a
	// dist.Pool makes the sweep distributed: cells are dispatched to
	// remote workers and verified, with byte-identical output. The
	// store wrapping still applies, so -resume and the shared corpus
	// work unchanged, and refinement passes inherit the same runner.
	Runner engine.CellRunner
	// Store, when set, serves cells whose (hash, seed) result it
	// already holds (marked Cached) and persists freshly computed ones
	// — how a killed sweep resumes from its surviving cells. See
	// engine.StreamOptions.Store.
	Store store.Store
	// OnCell, when set, receives each cell outcome in expansion order
	// (with the full result envelope) as it completes — the streaming
	// hook the CLI's NDJSON mode and the HTTP layer print from. A
	// non-nil error stops the sweep.
	OnCell func(CellOutcome) error
	// OnPass, when set on a refined sweep, receives each pass's
	// deterministic header before any of its cells stream — the hook
	// behind the NDJSON pass markers. Never called for dense sweeps. A
	// non-nil error stops the sweep.
	OnPass func(PassStats) error
	// Machines is the machine pool cells recycle simulated SoCs
	// through. Nil gets a fresh pool per Run when the default executor
	// is in use (most grid cells share a few machine shapes, so reuse
	// is the normal case); it is ignored when Run or Runner overrides
	// the executor. Reuse changes wall-clock only — recycled machines
	// replay byte-identically — so aggregate bytes never depend on it.
	Machines *soc.Pool
}

// WithStore returns the options with the result store set — the fluent
// form the facade documents.
func (o Options) WithStore(st store.Store) Options {
	o.Store = st
	return o
}

// CellOutcome is one completed grid cell: the cell (normalized spec +
// axis labels), its content hash (computed once per cell), the
// effective seed, and the run's result or error. Cached marks a result
// served from the configured store instead of computed. Pass is the
// refinement pass that computed the cell (0 for dense sweeps and the
// coarse pass).
type CellOutcome struct {
	Cell    scenario.Cell
	Hash    string
	Seed    int64
	Pass    int
	Result  *scenario.Result
	Err     error
	Cached  bool
	Elapsed time.Duration
}

// CellSummary is the compact, envelope-free record of one cell that a
// completed run retains: identity, coordinates, and headline metrics.
type CellSummary struct {
	Index int               `json:"index"`
	Name  string            `json:"name,omitempty"`
	Axes  map[string]string `json:"axes"`
	Hash  string            `json:"hash"`
	Seed  int64             `json:"seed"`
	Pass  int               `json:"pass,omitempty"`
	Bits  int               `json:"bits,omitempty"`
	// ThroughputBPS/BER/Verdict are zero/empty when Error is set.
	ThroughputBPS float64 `json:"throughput_bps,omitempty"`
	BER           float64 `json:"ber"`
	Verdict       string  `json:"verdict,omitempty"`
	Error         string  `json:"error,omitempty"`
}

// Result is the outcome of one sweep run.
type Result struct {
	// Hash is the sweep's content hash; BaseSeed the batch master seed.
	Hash     string `json:"hash"`
	BaseSeed int64  `json:"base_seed"`
	// Parallel is the effective worker count (wall-clock only; the
	// deterministic payload is Cells/Aggregate).
	Parallel int `json:"parallel"`
	// Cells holds one compact summary per executed cell, in order.
	Cells []CellSummary `json:"cells"`
	// Failed counts cells whose runner returned an error.
	Failed int `json:"failed"`
	// Cached counts cells served from the result store instead of
	// computed (wall-clock metadata: the cell bytes are identical
	// either way).
	Cached int `json:"cached"`
	// Aggregate is the grouped reduction of the successful cells.
	Aggregate *Table `json:"aggregate"`
	// Refinement records the adaptive run's shape (nil for dense runs):
	// passes, cells computed, and the dense-grid equivalent. Like the
	// aggregate it is a pure function of (sweep, base seed).
	Refinement *RefinementStats `json:"refinement,omitempty"`
	// Elapsed is the sweep wall-clock time (nondeterministic).
	Elapsed time.Duration `json:"-"`
	// RemoteDispatched, RemoteRedispatched, RemoteCorrupt and
	// RemoteLocal snapshot a delegating Runner's counters (see
	// engine.RemoteCellStats): cells served by workers, retried
	// dispatches, rejected (byzantine/stale) worker responses, and
	// local-fallback cells. Kept out of the JSON envelope — they are
	// fleet wall-clock metadata, and the aggregate bytes must not
	// depend on where cells were computed.
	RemoteDispatched   int `json:"-"`
	RemoteRedispatched int `json:"-"`
	RemoteCorrupt      int `json:"-"`
	RemoteLocal        int `json:"-"`
	// StoreErrors counts failed store operations across the run
	// (unreadable entries recomputed, failed writes). Wall-clock
	// metadata like the Remote* counters — a degraded store changes
	// timing, never bytes. StoreTransient/StorePermanent split the
	// count by failure class (network blip vs corrupt envelope).
	StoreErrors    int `json:"-"`
	StoreTransient int `json:"-"`
	StorePermanent int `json:"-"`
	// StoreTier snapshots the store's remote-path counters (retry
	// attempts, breaker state, replica cache) after the last pass; nil
	// for purely local stores. Wall-clock metadata.
	StoreTier *store.TierStats `json:"-"`
	// MachinesConstructed and MachinesReused count how many simulated
	// machines the run built from scratch vs recycled from the pool.
	// Wall-clock metadata like the Remote* counters: reuse never
	// changes the cell bytes.
	MachinesConstructed int `json:"-"`
	MachinesReused      int `json:"-"`
}

// Run expands and executes a sweep, streaming cells through the engine
// worker pool and reducing them on the fly. A sweep with a refine block
// runs adaptively (see scenario.Refine); every other sweep runs its
// dense grid. It returns an error for an unrunnable sweep (invalid
// spec) or a stopped stream (OnCell error); per-cell failures land in
// the summaries/Failed and do not stop the grid.
func Run(ctx context.Context, sw scenario.Sweep, opts Options) (*Result, error) {
	nsw := sw.Normalized()
	// Two expansion passes by design: the pre-flight validates every
	// cell so a doomed grid fails before any simulation runs (the batch
	// fail-whole contract), then the execution pass streams. Spec-level
	// work is microseconds per cell against milliseconds of simulation,
	// so the duplication is noise.
	if err := nsw.Validate(); err != nil {
		return nil, err
	}
	if nsw.Refine != nil {
		return runRefined(ctx, nsw, opts)
	}
	it, err := nsw.Cells()
	if err != nil {
		return nil, err
	}
	st := newExecState(nsw, opts)
	if err := st.execute(ctx, it.Next, 0); err != nil {
		return nil, err
	}
	return st.finish(), nil
}

// execState accumulates one sweep run across its execution passes (one
// for a dense grid, several for a refined one).
type execState struct {
	opts Options
	agg  *Aggregator
	res  *Result
}

func newExecState(nsw scenario.Sweep, opts Options) *execState {
	// Machine reuse is on by default: one pool spans every execution
	// pass, so a refined sweep's later passes run almost entirely on
	// recycled machines. Executor overrides bring their own compute
	// path and get no pool.
	if opts.Machines == nil && opts.Run == nil && opts.Runner == nil {
		opts.Machines = soc.NewPool()
	}
	return &execState{
		opts: opts,
		agg:  NewAggregator(nsw.EffectiveGroupBy()),
		res:  &Result{Hash: nsw.Hash(), BaseSeed: opts.BaseSeed},
	}
}

// execute streams the cells yielded by next through the engine worker
// pool, folding each outcome into the summaries and the aggregator.
// pass labels the outcomes (0 for dense sweeps and the coarse pass).
func (st *execState) execute(ctx context.Context, next func() (scenario.Cell, bool, error), pass int) error {
	opts := st.opts
	// Cells emit in dispatch order, so a FIFO of pending cells pairs
	// each emitted outcome back with its axis labels; its length is
	// bounded by the engine window. Next runs on the engine's
	// dispatcher goroutine and Emit on the caller's, so the queue is
	// mutex-guarded.
	var (
		queueMu   sync.Mutex
		cellQueue []scenario.Cell
		iterErr   error
	)
	stats, err := engine.StreamScenarios(ctx, engine.StreamOptions{
		Next: func() (scenario.Scenario, bool) {
			cell, ok, err := next()
			if err != nil {
				iterErr = err
				return scenario.Scenario{}, false
			}
			if !ok {
				return scenario.Scenario{}, false
			}
			queueMu.Lock()
			cellQueue = append(cellQueue, cell)
			queueMu.Unlock()
			return cell.Scenario, true
		},
		BaseSeed: opts.BaseSeed,
		Parallel: opts.Parallel,
		Window:   opts.Window,
		Run:      opts.Run,
		Runner:   opts.Runner,
		Store:    opts.Store,
		Machines: opts.Machines,
		Emit: func(o engine.ScenarioOutcome) error {
			queueMu.Lock()
			cell := cellQueue[0]
			cellQueue = cellQueue[1:]
			queueMu.Unlock()
			hash := o.Hash // computed once per slot by the engine dispatcher
			out := CellOutcome{Cell: cell, Hash: hash, Seed: o.Seed, Pass: pass, Result: o.Result, Err: o.Err, Cached: o.Cached, Elapsed: o.Elapsed}
			s := CellSummary{
				Index: cell.Index, Name: cell.Scenario.Name, Axes: cell.Axes,
				Hash: hash, Seed: o.Seed, Pass: pass,
			}
			if o.Err != nil {
				s.Error = o.Err.Error()
			} else {
				s.Bits = o.Result.Bits
				s.ThroughputBPS = o.Result.ThroughputBPS
				s.BER = o.Result.BER
				s.Verdict = o.Result.Verdict
			}
			st.res.Cells = append(st.res.Cells, s)
			st.agg.Add(cell.Axes, o.Result, o.Err)
			if opts.OnCell != nil {
				return opts.OnCell(out)
			}
			return nil
		},
	})
	if err != nil {
		return err
	}
	if iterErr != nil {
		return iterErr
	}
	st.res.Parallel = stats.Parallel
	st.res.Failed += stats.Failed
	st.res.Cached += stats.Cached
	st.res.StoreErrors += stats.StoreErrors
	st.res.StoreTransient += stats.StoreTransient
	st.res.StorePermanent += stats.StorePermanent
	if stats.StoreTier != nil {
		// Tier counters are cumulative over the store's lifetime, like
		// the Remote* counters: keep the latest snapshot.
		st.res.StoreTier = stats.StoreTier
	}
	st.res.Elapsed += stats.Elapsed
	// Cumulative over the runner's (and pool's) lifetime: the last
	// pass's snapshot is the whole run's total, so overwrite rather
	// than accumulate.
	st.res.RemoteDispatched = stats.RemoteDispatched
	st.res.RemoteRedispatched = stats.RemoteRedispatched
	st.res.RemoteCorrupt = stats.RemoteCorrupt
	st.res.RemoteLocal = stats.RemoteLocal
	st.res.MachinesConstructed = stats.MachinesConstructed
	st.res.MachinesReused = stats.MachinesReused
	return nil
}

// finish renders the run's aggregate and returns the result.
func (st *execState) finish() *Result {
	st.res.Aggregate = st.agg.Table(st.res.Hash, st.opts.BaseSeed)
	return st.res
}

// ---- grouped reduction ----

// Metric is the deterministic summary of one metric across a group's
// successful cells.
type Metric struct {
	Mean float64 `json:"mean"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
	P50  float64 `json:"p50"`
	P95  float64 `json:"p95"`
}

// metricOf reduces samples via the stats toolkit.
func metricOf(xs []float64) Metric {
	if len(xs) == 0 {
		return Metric{}
	}
	s := stats.Summarize(xs)
	return Metric{Mean: s.Mean, Min: s.Min, Max: s.Max, P50: s.P50, P95: s.P95}
}

// Group is one row of the aggregate table: the grouped axis values and
// the reduced metrics of every successful cell that matched them.
type Group struct {
	// Key maps each grouped axis to its value (encoding/json emits map
	// keys sorted, keeping the row deterministic).
	Key map[string]string `json:"key"`
	// Cells counts the group's cells; Errors how many of them failed
	// (failed cells contribute to no metric).
	Cells  int `json:"cells"`
	Errors int `json:"errors"`
	// BER, ThroughputBPS and ElapsedSimUS summarize the successful
	// cells' normalized envelopes.
	BER           Metric `json:"ber"`
	ThroughputBPS Metric `json:"throughput_bps"`
	ElapsedSimUS  Metric `json:"elapsed_sim_us"`
}

// Table is the aggregate of one sweep run — the paper-table-shaped
// reduction both the CLI and POST /v1/sweeps emit. Its JSON encoding is
// a pure function of (sweep, base seed).
type Table struct {
	Hash     string   `json:"hash"`
	BaseSeed int64    `json:"base_seed"`
	GroupBy  []string `json:"group_by"`
	Cells    int      `json:"cells"`
	Errors   int      `json:"errors"`
	Groups   []Group  `json:"groups"`
}

// groupAcc accumulates one group's samples.
type groupAcc struct {
	key    map[string]string
	cells  int
	errors int
	ber    []float64
	bps    []float64
	simUS  []float64
}

// Aggregator folds cell outcomes into grouped metric summaries. It
// retains three float64 samples per successful cell (needed for the
// percentiles) and nothing else — no result envelopes.
type Aggregator struct {
	groupBy []string
	groups  map[string]*groupAcc
	cells   int
	errors  int
}

// NewAggregator builds an aggregator grouping by the given axis names
// (empty means one grand-total group).
func NewAggregator(groupBy []string) *Aggregator {
	return &Aggregator{groupBy: groupBy, groups: map[string]*groupAcc{}}
}

// groupID encodes a cell's group_by coordinates as the aggregator's
// (and the refinement controller's) canonical group key.
func groupID(groupBy []string, axes map[string]string) string {
	var sb strings.Builder
	for _, g := range groupBy {
		sb.WriteString(g)
		sb.WriteByte('\x00')
		sb.WriteString(axes[g])
		sb.WriteByte('\x00')
	}
	return sb.String()
}

// Add folds one cell outcome in. axes labels the cell's coordinates;
// res may be nil when err is set (the cell still counts, toward Errors).
func (a *Aggregator) Add(axes map[string]string, res *scenario.Result, err error) {
	key := make(map[string]string, len(a.groupBy))
	for _, g := range a.groupBy {
		key[g] = axes[g]
	}
	id := groupID(a.groupBy, axes)
	acc := a.groups[id]
	if acc == nil {
		acc = &groupAcc{key: key}
		a.groups[id] = acc
	}
	acc.cells++
	a.cells++
	if err != nil || res == nil {
		acc.errors++
		a.errors++
		return
	}
	acc.ber = append(acc.ber, res.BER)
	acc.bps = append(acc.bps, res.ThroughputBPS)
	acc.simUS = append(acc.simUS, res.ElapsedSimUS)
}

// Table renders the aggregate: groups sorted by their grouped values in
// group-by order, each metric reduced deterministically.
func (a *Aggregator) Table(hash string, baseSeed int64) *Table {
	ids := make([]string, 0, len(a.groups))
	for id := range a.groups {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	t := &Table{
		Hash: hash, BaseSeed: baseSeed,
		GroupBy: append([]string{}, a.groupBy...),
		Cells:   a.cells, Errors: a.errors,
		Groups: make([]Group, 0, len(ids)),
	}
	for _, id := range ids {
		acc := a.groups[id]
		t.Groups = append(t.Groups, Group{
			Key: acc.key, Cells: acc.cells, Errors: acc.errors,
			BER:           metricOf(acc.ber),
			ThroughputBPS: metricOf(acc.bps),
			ElapsedSimUS:  metricOf(acc.simUS),
		})
	}
	return t
}

// CellLine is the NDJSON wire form of one streamed cell outcome — what
// the CLI's -ndjson mode emits per cell, field-for-field the framing
// POST /v1/sweeps streams (the HTTP layer carries its errors as a
// structured envelope instead of a string). Cached and elapsed_us are
// wall-clock serving metadata; everything else is the deterministic
// payload.
type CellLine struct {
	Index     int               `json:"index"`
	Name      string            `json:"name,omitempty"`
	Axes      map[string]string `json:"axes"`
	Hash      string            `json:"hash"`
	Seed      int64             `json:"seed"`
	Pass      int               `json:"pass,omitempty"`
	Cached    bool              `json:"cached"`
	ElapsedUS float64           `json:"elapsed_us"`
	Error     string            `json:"error,omitempty"`
	Result    *scenario.Result  `json:"result,omitempty"`
}

// LineOf converts a cell outcome to its NDJSON line form.
func LineOf(o CellOutcome) CellLine {
	l := CellLine{
		Index: o.Cell.Index, Name: o.Cell.Scenario.Name, Axes: o.Cell.Axes,
		Hash: o.Hash, Seed: o.Seed, Pass: o.Pass, Cached: o.Cached,
		ElapsedUS: float64(o.Elapsed) / float64(time.Microsecond),
	}
	if o.Err != nil {
		l.Error = o.Err.Error()
	} else {
		l.Result = o.Result
	}
	return l
}

// passLine frames a refinement pass header as an NDJSON marker line —
// emitted before the pass's cells by both the CLI's -ndjson mode and
// POST /v1/sweeps.
type passLine struct {
	Pass PassStats `json:"pass"`
}

// WritePassLine writes one pass marker's NDJSON framing.
func WritePassLine(w io.Writer, p PassStats) error {
	return json.NewEncoder(w).Encode(passLine{Pass: p})
}

// aggregateLine frames the aggregate as the final NDJSON line of a
// sweep stream; the HTTP layer emits the identical framing, so the
// trailing line of `ichannels sweep run -ndjson` and of POST /v1/sweeps
// are byte-comparable. Refined sweeps carry their refinement record
// (cells computed vs the dense grid) in the same line.
type aggregateLine struct {
	Aggregate  *Table           `json:"aggregate"`
	Refinement *RefinementStats `json:"refinement,omitempty"`
}

// WriteAggregateLine writes the aggregate's NDJSON framing (dense
// sweeps; refined runs use Result.WriteAggregateLine).
func WriteAggregateLine(w io.Writer, t *Table) error {
	return json.NewEncoder(w).Encode(aggregateLine{Aggregate: t})
}

// WriteAggregateLine writes the run's trailing NDJSON line: the
// aggregate, plus the refinement record when the run was adaptive.
func (r *Result) WriteAggregateLine(w io.Writer) error {
	return json.NewEncoder(w).Encode(aggregateLine{Aggregate: r.Aggregate, Refinement: r.Refinement})
}

// WriteJSON writes the machine-readable sweep result: the compact cell
// summaries plus the aggregate (no bit streams — use -ndjson or the
// HTTP stream for full envelopes).
func (r *Result) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteText writes the human sweep rendering: the per-cell comparison
// rows followed by the grouped aggregate. Deterministic for a fixed
// (sweep, base seed).
func (r *Result) WriteText(w io.Writer) error {
	rows := [][]string{{"cell", "hash", "seed", "bits", "throughput (b/s)", "BER", "verdict/error"}}
	for _, c := range r.Cells {
		last := c.Verdict
		if c.Error != "" {
			last = "ERROR: " + c.Error
		}
		name := c.Name
		if name == "" {
			name = fmt.Sprintf("cell %d", c.Index)
		}
		row := []string{name, c.Hash, fmt.Sprint(c.Seed)}
		if c.Error != "" {
			row = append(row, "-", "-", "-", last)
		} else {
			row = append(row, fmt.Sprint(c.Bits), fmt.Sprintf("%.0f", c.ThroughputBPS),
				fmt.Sprintf("%.3f", c.BER), last)
		}
		rows = append(rows, row)
	}
	if err := writeAligned(w, rows); err != nil {
		return err
	}
	if ref := r.Refinement; ref != nil {
		if _, err := fmt.Fprintf(w, "\nrefined on %s (threshold %g): %d of %d dense cells over %d passes\n",
			ref.Metric, ref.Threshold, ref.CellsComputed, ref.DenseCells, len(ref.Passes)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "\naggregate (group by %s):\n", strings.Join(r.Aggregate.GroupBy, ", ")); err != nil {
		return err
	}
	return r.Aggregate.WriteText(w)
}

// WriteTiming writes a wall-clock summary (intended for stderr).
func (r *Result) WriteTiming(w io.Writer) {
	refined := ""
	if ref := r.Refinement; ref != nil {
		refined = fmt.Sprintf(" (refined: %d/%d dense)", ref.CellsComputed, ref.DenseCells)
	}
	machines := ""
	if r.MachinesConstructed > 0 || r.MachinesReused > 0 {
		machines = fmt.Sprintf(", machines %d built/%d reused", r.MachinesConstructed, r.MachinesReused)
	}
	fmt.Fprintf(w, "sweep %s: %d cells%s, %d failed, %d cached%s, parallel %d, %.2fms total\n",
		r.Hash, len(r.Cells), refined, r.Failed, r.Cached, machines, r.Parallel,
		float64(r.Elapsed)/float64(time.Millisecond))
}

// writeAligned renders rows as an aligned table with a rule under the
// header.
func writeAligned(w io.Writer, rows [][]string) error {
	widths := make([]int, len(rows[0]))
	for _, row := range rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	for ri, row := range rows {
		for i, c := range row {
			sep := "  "
			if i == 0 {
				sep = ""
			}
			if _, err := fmt.Fprintf(w, "%s%-*s", sep, widths[i], c); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
		if ri == 0 {
			for i := range row {
				sep := "  "
				if i == 0 {
					sep = ""
				}
				fmt.Fprint(w, sep, strings.Repeat("-", widths[i]))
			}
			fmt.Fprintln(w)
		}
	}
	return nil
}

// WriteText renders the aggregate as an aligned comparison table: one
// row per group with cell counts and the headline reductions. The
// output depends only on (sweep, base seed).
func (t *Table) WriteText(w io.Writer) error {
	header := append([]string{}, t.GroupBy...)
	if len(header) == 0 {
		header = []string{"(all)"}
	}
	header = append(header, "cells", "errors", "BER mean", "BER p95", "b/s mean", "b/s p95")
	rows := [][]string{header}
	for _, g := range t.Groups {
		row := make([]string, 0, len(header))
		if len(t.GroupBy) == 0 {
			row = append(row, "*")
		}
		for _, axis := range t.GroupBy {
			row = append(row, g.Key[axis])
		}
		row = append(row,
			fmt.Sprint(g.Cells), fmt.Sprint(g.Errors),
			fmt.Sprintf("%.3f", g.BER.Mean), fmt.Sprintf("%.3f", g.BER.P95),
			fmt.Sprintf("%.0f", g.ThroughputBPS.Mean), fmt.Sprintf("%.0f", g.ThroughputBPS.P95),
		)
		rows = append(rows, row)
	}
	return writeAligned(w, rows)
}
