package pdn

import (
	"testing"
	"testing/quick"

	"ichannels/internal/units"
)

func testConfig() Config {
	return Config{
		Kind:       MBVR,
		SlewUp:     units.Volt(1000), // 1 mV/µs
		SlewDown:   units.Volt(2000),
		CmdLatency: units.Microsecond,
		VMin:       0.5,
		VMax:       1.5,
	}
}

func TestConfigValidate(t *testing.T) {
	if err := testConfig().Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := testConfig()
	bad.SlewUp = 0
	if bad.Validate() == nil {
		t.Error("zero slew must fail")
	}
	bad = testConfig()
	bad.CmdLatency = -1
	if bad.Validate() == nil {
		t.Error("negative latency must fail")
	}
	bad = testConfig()
	bad.VMax = bad.VMin
	if bad.Validate() == nil {
		t.Error("empty voltage range must fail")
	}
}

func TestDefaultConfigsValid(t *testing.T) {
	for _, k := range []Kind{MBVR, FIVR, LDO} {
		cfg := DefaultConfig(k)
		if err := cfg.Validate(); err != nil {
			t.Errorf("%v default invalid: %v", k, err)
		}
		if cfg.Kind != k {
			t.Errorf("%v default has kind %v", k, cfg.Kind)
		}
	}
	// The mitigation story depends on LDO being much faster than MBVR.
	if DefaultConfig(LDO).SlewUp <= 10*DefaultConfig(MBVR).SlewUp {
		t.Error("LDO must slew at least 10× faster than MBVR")
	}
}

func TestKindString(t *testing.T) {
	if MBVR.String() != "MBVR" || FIVR.String() != "FIVR" || LDO.String() != "LDO" {
		t.Fatal("kind names wrong")
	}
	if Kind(9).String() != "Kind(9)" {
		t.Fatal("unknown kind formatting")
	}
}

func TestNewRegulatorBounds(t *testing.T) {
	if _, err := NewRegulator(testConfig(), 0.2); err == nil {
		t.Fatal("initial voltage below VMin accepted")
	}
	if _, err := NewRegulator(testConfig(), 2.0); err == nil {
		t.Fatal("initial voltage above VMax accepted")
	}
}

func TestRampTiming(t *testing.T) {
	r, err := NewRegulator(testConfig(), 0.8)
	if err != nil {
		t.Fatal(err)
	}
	// +10 mV at 1 mV/µs with 1 µs command latency → settle at t=11 µs.
	settle := r.SetTarget(0, 0.81)
	want := units.Time(11 * units.Microsecond)
	if settle != want {
		t.Fatalf("settle = %v, want %v", units.Duration(settle), units.Duration(want))
	}
	// During command latency the output holds.
	if got := r.Voltage(units.Time(500 * units.Nanosecond)); got != 0.8 {
		t.Fatalf("during latency: %v", got)
	}
	// Midway through the ramp: half the delta.
	mid := r.Voltage(units.Time(6 * units.Microsecond))
	if mid < 0.8049 || mid > 0.8051 {
		t.Fatalf("mid-ramp voltage = %v", mid)
	}
	if got := r.Voltage(settle); got != 0.81 {
		t.Fatalf("at settle: %v", got)
	}
	if !r.Settled(settle) || r.Settled(settle-1) {
		t.Fatal("Settled boundary wrong")
	}
}

func TestDownRampUsesDownSlew(t *testing.T) {
	r, _ := NewRegulator(testConfig(), 0.9)
	// −20 mV at 2 mV/µs → 10 µs ramp + 1 µs latency.
	settle := r.SetTarget(0, 0.88)
	if settle != units.Time(11*units.Microsecond) {
		t.Fatalf("settle = %v", units.Duration(settle))
	}
}

func TestRetargetMidRampRebases(t *testing.T) {
	r, _ := NewRegulator(testConfig(), 0.8)
	r.SetTarget(0, 0.82) // settles at 21 µs
	// Retarget at 11 µs: output is ~0.81 then.
	at := units.Time(11 * units.Microsecond)
	vNow := r.Voltage(at)
	settle := r.SetTarget(at, 0.83)
	// New ramp: (0.83−vNow)/1mV/µs + 1 µs latency.
	wantDur := units.FromSeconds(float64(0.83-vNow)/1000) + units.Microsecond
	if got := settle.Sub(at); got != wantDur {
		t.Fatalf("re-ramp duration %v, want %v", got, wantDur)
	}
	if r.Target() != 0.83 {
		t.Fatalf("target = %v", r.Target())
	}
}

func TestSetTargetClamps(t *testing.T) {
	r, _ := NewRegulator(testConfig(), 0.8)
	r.SetTarget(0, 99)
	if r.Target() != 1.5 {
		t.Fatalf("clamped target = %v", r.Target())
	}
	r2, _ := NewRegulator(testConfig(), 0.8)
	r2.SetTarget(0, 0)
	if r2.Target() != 0.5 {
		t.Fatalf("clamped target = %v", r2.Target())
	}
}

func TestZeroDeltaSettlesAfterLatency(t *testing.T) {
	r, _ := NewRegulator(testConfig(), 0.8)
	settle := r.SetTarget(0, 0.8)
	if settle != units.Time(units.Microsecond) {
		t.Fatalf("zero-delta settle = %v", units.Duration(settle))
	}
}

func TestTransitionTimePlansWithoutCommanding(t *testing.T) {
	r, _ := NewRegulator(testConfig(), 0.8)
	d := r.TransitionTime(0, 0.81)
	if d != 11*units.Microsecond {
		t.Fatalf("TransitionTime = %v", d)
	}
	if r.Target() != 0.8 {
		t.Fatal("TransitionTime must not change the target")
	}
}

// Property: during an up-ramp, voltage is nondecreasing in time and never
// exceeds the target.
func TestPropertyRampMonotone(t *testing.T) {
	f := func(deltaMV uint8, probe uint16) bool {
		r, _ := NewRegulator(testConfig(), 0.8)
		target := 0.8 + units.Volt(float64(deltaMV)/1000)
		if target > 1.5 {
			target = 1.5
		}
		settle := r.SetTarget(0, target)
		t1 := units.Time(probe)
		t2 := t1.Add(units.Duration(probe))
		v1, v2 := r.Voltage(t1), r.Voltage(t2)
		return v1 <= v2+1e-12 && v2 <= target+1e-12 && r.Voltage(settle) == target
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestLoadLine(t *testing.T) {
	ll, err := NewLoadLine(units.MilliOhm(2))
	if err != nil {
		t.Fatal(err)
	}
	// 50 A across 2 mΩ → 100 mV droop.
	if got := ll.Droop(50); got != 0.1 {
		t.Fatalf("droop = %v", got)
	}
	if got := ll.LoadVoltage(1.0, 50); got != 0.9 {
		t.Fatalf("load voltage = %v", got)
	}
	if got := ll.RequiredVcc(0.9, 50); got != 1.0 {
		t.Fatalf("required = %v", got)
	}
	if _, err := NewLoadLine(-1); err == nil {
		t.Fatal("negative RLL accepted")
	}
}

func TestLoadLineGuardbandEquation(t *testing.T) {
	// Paper Equation 1: ΔV = ΔCdyn · Vcc · F · RLL.
	ll, _ := NewLoadLine(units.MilliOhm(2))
	dv := ll.GuardbandFor(2e-9, 1.0, 2*units.GHz)
	// 2nF × 1V × 2GHz × 2mΩ = 8 mV.
	if dv < 0.0079 || dv > 0.0081 {
		t.Fatalf("ΔV = %v", dv)
	}
}

// Property: LoadVoltage and RequiredVcc are inverses.
func TestPropertyLoadLineInverse(t *testing.T) {
	f := func(iccRaw uint8) bool {
		ll, _ := NewLoadLine(units.MilliOhm(1.8))
		icc := units.Ampere(iccRaw)
		vmin := units.Volt(0.75)
		vcc := ll.RequiredVcc(vmin, icc)
		back := ll.LoadVoltage(vcc, icc)
		d := float64(back - vmin)
		return d < 1e-12 && d > -1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
