package pdn

import (
	"fmt"

	"ichannels/internal/units"
)

// LoadLine models the adaptive-voltage-positioning relationship between the
// regulator output and the voltage at the cores (paper §2, Fig. 2):
//
//	Vccload = Vcc − R_LL · Icc
//
// R_LL is typically 1.6–2.4 mΩ for recent client processors.
type LoadLine struct {
	R units.Ohm
}

// NewLoadLine creates a load-line with resistance r.
func NewLoadLine(r units.Ohm) (LoadLine, error) {
	if r < 0 {
		return LoadLine{}, fmt.Errorf("pdn: negative load-line resistance %g", float64(r))
	}
	return LoadLine{R: r}, nil
}

// LoadVoltage returns the voltage at the load given regulator output vcc
// and load current icc.
func (l LoadLine) LoadVoltage(vcc units.Volt, icc units.Ampere) units.Volt {
	return vcc - units.Volt(float64(l.R)*float64(icc))
}

// RequiredVcc returns the minimum regulator output that keeps the load
// voltage at or above vmin while drawing icc.
func (l LoadLine) RequiredVcc(vmin units.Volt, icc units.Ampere) units.Volt {
	return vmin + units.Volt(float64(l.R)*float64(icc))
}

// Droop returns the voltage drop across the load-line at current icc.
func (l LoadLine) Droop(icc units.Ampere) units.Volt {
	return units.Volt(float64(l.R) * float64(icc))
}

// GuardbandFor computes the extra voltage guardband ΔV needed when the
// dynamic capacitance rises by dCdyn (farads) at supply voltage vcc and
// frequency f, per the paper's Equation 1:
//
//	ΔV ≈ (Cdyn2 − Cdyn1) · Vcc1 · F · R_LL
func (l LoadLine) GuardbandFor(dCdyn float64, vcc units.Volt, f units.Hertz) units.Volt {
	return units.Volt(dCdyn * float64(vcc) * float64(f) * float64(l.R))
}
