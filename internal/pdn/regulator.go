// Package pdn models the power delivery network of a client processor:
// voltage regulators (motherboard VR, fully-integrated VR, per-core LDO),
// the serial voltage identification (SVID) command interface, linear
// slew-rate voltage ramps, and the load-line relationship between regulator
// output voltage and the voltage seen at the cores.
//
// The regulator ramp time is the dominant component (~99%, paper §5.4) of
// the throttling period the covert channels exploit, so its model — command
// latency plus |ΔV| / slew — is the single most important calibration
// surface in the simulator.
package pdn

import (
	"fmt"

	"ichannels/internal/units"
)

// Kind identifies the regulator technology. Different technologies differ
// primarily in voltage slew rate and command latency (paper §2, §7).
type Kind int

const (
	// MBVR is a motherboard voltage regulator, shared by all cores and
	// commanded over SVID. Slowest ramps (Coffee Lake, Cannon Lake).
	MBVR Kind = iota
	// FIVR is a fully-integrated on-die voltage regulator (Haswell).
	// Faster ramps than MBVR but still microseconds for guardband steps.
	FIVR
	// LDO is a per-core low-dropout regulator (recent AMD parts; the
	// paper's first mitigation). Sub-microsecond transitions.
	LDO
)

func (k Kind) String() string {
	switch k {
	case MBVR:
		return "MBVR"
	case FIVR:
		return "FIVR"
	case LDO:
		return "LDO"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Config describes a regulator instance.
type Config struct {
	Kind Kind
	// SlewUp is the voltage ramp rate when increasing voltage, in volts
	// per second (e.g. 1 mV/µs = 1000 V/s).
	SlewUp units.Volt
	// SlewDown is the ramp rate when decreasing voltage, in volts/second.
	SlewDown units.Volt
	// CmdLatency is the fixed latency between issuing a set-voltage
	// command (e.g. over SVID) and the ramp beginning.
	CmdLatency units.Duration
	// VMin and VMax bound the commandable output voltage.
	VMin, VMax units.Volt
}

// Validate checks configuration invariants.
func (c Config) Validate() error {
	if c.SlewUp <= 0 || c.SlewDown <= 0 {
		return fmt.Errorf("pdn: non-positive slew rate (up=%v down=%v)", c.SlewUp, c.SlewDown)
	}
	if c.CmdLatency < 0 {
		return fmt.Errorf("pdn: negative command latency %v", c.CmdLatency)
	}
	if c.VMin <= 0 || c.VMax <= c.VMin {
		return fmt.Errorf("pdn: invalid voltage bounds [%v, %v]", c.VMin, c.VMax)
	}
	return nil
}

// DefaultConfig returns representative parameters for a regulator kind,
// calibrated so the resulting throttling periods match the paper's
// measurements (Fig. 8(a): Haswell/FIVR ≈ 9 µs, Coffee Lake ≈ 12 µs,
// Cannon Lake ≈ 14 µs for an AVX2 step; LDO < 0.5 µs, §7).
func DefaultConfig(k Kind) Config {
	switch k {
	case FIVR:
		return Config{
			Kind:       FIVR,
			SlewUp:     units.Volt(2500), // 2.5 mV/µs
			SlewDown:   units.Volt(5000),
			CmdLatency: 500 * units.Nanosecond,
			VMin:       0.55,
			VMax:       1.52,
		}
	case LDO:
		return Config{
			Kind:       LDO,
			SlewUp:     units.Volt(60000), // 60 mV/µs → <0.5 µs guardband steps
			SlewDown:   units.Volt(60000),
			CmdLatency: 50 * units.Nanosecond,
			VMin:       0.55,
			VMax:       1.5,
		}
	default: // MBVR
		return Config{
			Kind:       MBVR,
			SlewUp:     units.Volt(1000), // 1 mV/µs
			SlewDown:   units.Volt(2000),
			CmdLatency: 1500 * units.Nanosecond,
			VMin:       0.55,
			VMax:       1.52,
		}
	}
}

// Regulator is a voltage regulator with linear slew-rate ramping. It keeps
// at most one ramp in flight; the PMU is responsible for serializing
// transition requests (that serialization is the root cause of
// Multi-Throttling-Cores, so it lives in the PMU where the paper places it).
type Regulator struct {
	cfg Config

	// Ramp state: between rampStart and rampEnd the output moves linearly
	// from startV to targetV; outside a ramp the output is targetV.
	startV    units.Volt
	targetV   units.Volt
	rampStart units.Time // when the voltage begins moving (after CmdLatency)
	rampEnd   units.Time
}

// NewRegulator creates a regulator with its output settled at v0.
func NewRegulator(cfg Config, v0 units.Volt) (*Regulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if v0 < cfg.VMin || v0 > cfg.VMax {
		return nil, fmt.Errorf("pdn: initial voltage %v outside [%v, %v]", v0, cfg.VMin, cfg.VMax)
	}
	return &Regulator{cfg: cfg, startV: v0, targetV: v0}, nil
}

// Reset re-settles the regulator at v0 under a (possibly updated)
// configuration, exactly as if freshly constructed — the in-place form a
// pooled machine uses to avoid rebuilding its power-delivery network.
func (r *Regulator) Reset(cfg Config, v0 units.Volt) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if v0 < cfg.VMin || v0 > cfg.VMax {
		return fmt.Errorf("pdn: initial voltage %v outside [%v, %v]", v0, cfg.VMin, cfg.VMax)
	}
	r.cfg = cfg
	r.startV = v0
	r.targetV = v0
	r.rampStart = 0
	r.rampEnd = 0
	return nil
}

// Config returns the regulator's configuration.
func (r *Regulator) Config() Config { return r.cfg }

// Voltage returns the instantaneous output voltage at time now.
func (r *Regulator) Voltage(now units.Time) units.Volt {
	switch {
	case now <= r.rampStart:
		return r.startV
	case now >= r.rampEnd:
		return r.targetV
	default:
		frac := float64(now-r.rampStart) / float64(r.rampEnd-r.rampStart)
		return r.startV + units.Volt(frac)*(r.targetV-r.startV)
	}
}

// Target returns the voltage the regulator is settling toward.
func (r *Regulator) Target() units.Volt { return r.targetV }

// Settled reports whether the output has reached the target at time now.
func (r *Regulator) Settled(now units.Time) bool { return now >= r.rampEnd }

// SettleTime returns when the in-flight ramp (if any) completes.
func (r *Regulator) SettleTime() units.Time { return r.rampEnd }

// SetTarget commands a new output voltage at time now and returns the time
// at which the output will settle at the target. Commanding a new target
// mid-ramp re-bases the ramp from the instantaneous output voltage (the
// regulator does not snap). Targets are clamped to [VMin, VMax]; use
// TransitionTime to plan without issuing.
func (r *Regulator) SetTarget(now units.Time, v units.Volt) units.Time {
	if v < r.cfg.VMin {
		v = r.cfg.VMin
	}
	if v > r.cfg.VMax {
		v = r.cfg.VMax
	}
	cur := r.Voltage(now)
	r.startV = cur
	r.targetV = v
	r.rampStart = now.Add(r.cfg.CmdLatency)
	r.rampEnd = r.rampStart.Add(r.rampDuration(cur, v))
	return r.rampEnd
}

func (r *Regulator) rampDuration(from, to units.Volt) units.Duration {
	dv := float64(to - from)
	if dv == 0 {
		return 0
	}
	slew := float64(r.cfg.SlewUp)
	if dv < 0 {
		dv = -dv
		slew = float64(r.cfg.SlewDown)
	}
	return units.FromSeconds(dv / slew)
}

// TransitionTime returns how long a transition from the instantaneous
// voltage at now to v would take (command latency + ramp), without
// commanding it.
func (r *Regulator) TransitionTime(now units.Time, v units.Volt) units.Duration {
	return r.cfg.CmdLatency + r.rampDuration(r.Voltage(now), v)
}
