// Package stats provides the small statistical toolkit the experiments
// need: summaries, histograms, separability checks for multi-level
// distributions, and bit-error-rate accounting.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary describes a sample set.
type Summary struct {
	N             int
	Mean, Std     float64
	Min, Max      float64
	P25, P50, P75 float64
	P5, P95       float64
}

// Summarize computes a Summary of xs. An empty input yields a zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if len(xs) > 1 {
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.P5 = Percentile(sorted, 5)
	s.P25 = Percentile(sorted, 25)
	s.P50 = Percentile(sorted, 50)
	s.P75 = Percentile(sorted, 75)
	s.P95 = Percentile(sorted, 95)
	return s
}

// Percentile returns the p-th percentile (0–100) of an ascending-sorted
// slice using linear interpolation.
func Percentile(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if n == 1 {
		return sorted[0]
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[n-1]
	}
	pos := p / 100 * float64(n-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Histogram is a fixed-width-bin histogram.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	Total  int
	Under  int // samples below Lo
	Over   int // samples at or above Hi
}

// NewHistogram builds a histogram of xs over [lo, hi) with bins bins.
func NewHistogram(xs []float64, lo, hi float64, bins int) (*Histogram, error) {
	if bins <= 0 {
		return nil, fmt.Errorf("stats: bins must be positive, got %d", bins)
	}
	if hi <= lo {
		return nil, fmt.Errorf("stats: histogram range [%g, %g) is empty", lo, hi)
	}
	h := &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
	width := (hi - lo) / float64(bins)
	for _, x := range xs {
		h.Total++
		switch {
		case x < lo:
			h.Under++
		case x >= hi:
			h.Over++
		default:
			h.Counts[int((x-lo)/width)]++
		}
	}
	return h, nil
}

// BinCenter returns the center value of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	width := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*width
}

// Density returns the probability density of bin i.
func (h *Histogram) Density(i int) float64 {
	if h.Total == 0 {
		return 0
	}
	width := (h.Hi - h.Lo) / float64(len(h.Counts))
	return float64(h.Counts[i]) / (float64(h.Total) * width)
}

// Mode returns the center of the most populated bin.
func (h *Histogram) Mode() float64 {
	best := 0
	for i, c := range h.Counts {
		if c > h.Counts[best] {
			best = i
		}
	}
	return h.BinCenter(best)
}

// Separable reports whether the per-level sample groups are pairwise
// non-overlapping with at least gap between the max of one group and the
// min of the next (groups ordered by mean). This is the paper's Fig. 13
// property: the four TP ranges do not overlap, with >2K cycles between
// them.
func Separable(groups [][]float64, gap float64) bool {
	type span struct{ lo, hi, mean float64 }
	spans := make([]span, 0, len(groups))
	for _, g := range groups {
		if len(g) == 0 {
			return false
		}
		s := Summarize(g)
		spans = append(spans, span{s.Min, s.Max, s.Mean})
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].mean < spans[j].mean })
	for i := 1; i < len(spans); i++ {
		if spans[i].lo-spans[i-1].hi < gap {
			return false
		}
	}
	return true
}

// MidpointThresholds returns len(groups)-1 decision thresholds at the
// midpoints between adjacent group means (groups must be ordered by
// increasing symbol value; thresholds come back sorted by mean order).
func MidpointThresholds(groups [][]float64) []float64 {
	means := make([]float64, len(groups))
	for i, g := range groups {
		means[i] = Summarize(g).Mean
	}
	sorted := append([]float64(nil), means...)
	sort.Float64s(sorted)
	out := make([]float64, 0, len(sorted)-1)
	for i := 1; i < len(sorted); i++ {
		out = append(out, (sorted[i-1]+sorted[i])/2)
	}
	return out
}

// BitErrors counts differing bits between two equal-length bit slices.
// It panics on length mismatch: comparing misaligned transmissions is a
// harness bug, not a channel error.
func BitErrors(sent, got []int) int {
	if len(sent) != len(got) {
		panic(fmt.Sprintf("stats: bit slice length mismatch %d vs %d", len(sent), len(got)))
	}
	n := 0
	for i := range sent {
		if sent[i] != got[i] {
			n++
		}
	}
	return n
}

// BER returns the bit-error rate between sent and received bits.
func BER(sent, got []int) float64 {
	if len(sent) == 0 {
		return 0
	}
	return float64(BitErrors(sent, got)) / float64(len(sent))
}
