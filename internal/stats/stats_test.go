package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.P50 != 3 {
		t.Fatalf("summary %+v", s)
	}
	want := math.Sqrt(2.5)
	if math.Abs(s.Std-want) > 1e-12 {
		t.Fatalf("std %g, want %g", s.Std, want)
	}
	if Summarize(nil).N != 0 {
		t.Fatal("empty summary")
	}
	one := Summarize([]float64{7})
	if one.Std != 0 || one.Mean != 7 {
		t.Fatalf("single-sample summary %+v", one)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	if Percentile(xs, 0) != 10 || Percentile(xs, 100) != 40 {
		t.Fatal("extremes wrong")
	}
	if got := Percentile(xs, 50); got != 25 {
		t.Fatalf("P50 = %g", got)
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile")
	}
}

// Property: percentile is monotone in p and bounded by min/max.
func TestPropertyPercentileMonotone(t *testing.T) {
	f := func(raw []uint8, aRaw, bRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		sort.Float64s(xs)
		a, b := float64(aRaw%101), float64(bRaw%101)
		if a > b {
			a, b = b, a
		}
		pa, pb := Percentile(xs, a), Percentile(xs, b)
		return pa <= pb && pa >= xs[0] && pb <= xs[len(xs)-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram([]float64{0.5, 1.5, 1.6, 2.5, -1, 10}, 0, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if h.Counts[0] != 1 || h.Counts[1] != 2 || h.Counts[2] != 1 {
		t.Fatalf("counts %v", h.Counts)
	}
	if h.Under != 1 || h.Over != 1 || h.Total != 6 {
		t.Fatalf("under/over %d/%d total %d", h.Under, h.Over, h.Total)
	}
	if h.BinCenter(0) != 0.5 {
		t.Fatalf("center %g", h.BinCenter(0))
	}
	if h.Mode() != 1.5 {
		t.Fatalf("mode %g", h.Mode())
	}
	// Density integrates to the in-range fraction.
	var integral float64
	for i := range h.Counts {
		integral += h.Density(i) * 1.0 // bin width 1
	}
	if math.Abs(integral-4.0/6) > 1e-12 {
		t.Fatalf("density integral %g", integral)
	}
}

func TestHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(nil, 0, 1, 0); err == nil {
		t.Fatal("zero bins accepted")
	}
	if _, err := NewHistogram(nil, 1, 1, 4); err == nil {
		t.Fatal("empty range accepted")
	}
}

func TestSeparable(t *testing.T) {
	a := []float64{10, 11, 12}
	b := []float64{20, 21, 22}
	c := []float64{30, 31, 32}
	if !Separable([][]float64{a, b, c}, 5) {
		t.Fatal("clearly separated groups rejected")
	}
	if Separable([][]float64{a, b, c}, 9) {
		t.Fatal("gap requirement ignored")
	}
	if Separable([][]float64{a, {11.5, 21}}, 1) {
		t.Fatal("overlapping groups accepted")
	}
	if Separable([][]float64{a, nil}, 1) {
		t.Fatal("empty group accepted")
	}
	// Order must not matter.
	if !Separable([][]float64{c, a, b}, 5) {
		t.Fatal("separability must be order-independent")
	}
}

func TestMidpointThresholds(t *testing.T) {
	groups := [][]float64{{10, 12}, {20, 22}, {30, 32}}
	th := MidpointThresholds(groups)
	if len(th) != 2 || th[0] != 16 || th[1] != 26 {
		t.Fatalf("thresholds %v", th)
	}
}

func TestBitErrorsAndBER(t *testing.T) {
	if BitErrors([]int{0, 1, 1, 0}, []int{0, 1, 0, 1}) != 2 {
		t.Fatal("BitErrors wrong")
	}
	if BER([]int{0, 1, 1, 0}, []int{0, 1, 0, 1}) != 0.5 {
		t.Fatal("BER wrong")
	}
	if BER(nil, nil) != 0 {
		t.Fatal("empty BER")
	}
}

func TestBitErrorsMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	BitErrors([]int{1}, []int{1, 0})
}

// Property: Summarize bounds hold for arbitrary inputs.
func TestPropertySummaryBounds(t *testing.T) {
	f := func(raw []int8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		s := Summarize(xs)
		return s.Min <= s.P25 && s.P25 <= s.P50 && s.P50 <= s.P75 && s.P75 <= s.Max &&
			s.Mean >= s.Min && s.Mean <= s.Max && s.Std >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
