// Package pmu implements the processor's power management unit: the central
// PMU that owns voltage guardbands, license grants, the serialized voltage
// transition queue (the root cause of Multi-Throttling-Cores), the 650 µs
// license hysteresis ("reset-time"), and the Iccmax/Vccmax protection that
// reduces frequency at Turbo (paper §2, §5).
package pmu

import (
	"fmt"

	"ichannels/internal/isa"
	"ichannels/internal/units"
)

// GuardbandTable maps instruction-intensity classes to the extra voltage
// guardband (ΔV) the PMU must program above the V/F-curve base voltage
// before instructions of that class may run at full rate. Per the paper's
// Equation 1, ΔV scales linearly with frequency, so entries are expressed
// in volts per GHz. Contributions from multiple cores combine with
// empirically calibrated interaction weights (Fig. 6(a): the second Coffee
// Lake core adds slightly more than the first; Fig. 10(a): two Cannon Lake
// cores need ≈1.8× the single-core guardband).
type GuardbandTable struct {
	// PerClassPerGHz is the single-core power-virus guardband of each
	// class at 1 GHz. Entry [isa.Scalar64] must be zero (scalar code is
	// the baseline) and entries must be non-decreasing in class.
	PerClassPerGHz [isa.NumClasses]units.Volt

	// CoreWeights scales the i-th largest per-core contribution when
	// multiple cores hold PHI licenses simultaneously. CoreWeights[0]
	// must be 1. Cores beyond the table reuse the last weight.
	CoreWeights []float64
}

// Validate checks the table invariants.
func (g GuardbandTable) Validate() error {
	if g.PerClassPerGHz[isa.Scalar64] != 0 {
		return fmt.Errorf("pmu: scalar guardband must be zero, got %v", g.PerClassPerGHz[isa.Scalar64])
	}
	for c := 1; c < isa.NumClasses; c++ {
		if g.PerClassPerGHz[c] < g.PerClassPerGHz[c-1] {
			return fmt.Errorf("pmu: guardband must be non-decreasing by class; %s (%v) < %s (%v)",
				isa.Class(c), g.PerClassPerGHz[c], isa.Class(c-1), g.PerClassPerGHz[c-1])
		}
	}
	if g.PerClassPerGHz[isa.NumClasses-1] <= 0 {
		return fmt.Errorf("pmu: top guardband must be positive")
	}
	if len(g.CoreWeights) == 0 {
		return fmt.Errorf("pmu: at least one core weight required")
	}
	if g.CoreWeights[0] != 1 {
		return fmt.Errorf("pmu: first core weight must be 1, got %g", g.CoreWeights[0])
	}
	for i, w := range g.CoreWeights {
		if w <= 0 {
			return fmt.Errorf("pmu: core weight %d must be positive, got %g", i, w)
		}
	}
	return nil
}

// Single returns the guardband for one core holding a license of class c
// at frequency f.
func (g GuardbandTable) Single(c isa.Class, f units.Hertz) units.Volt {
	if !c.Valid() {
		panic(fmt.Sprintf("pmu: invalid class %d", int(c)))
	}
	return g.PerClassPerGHz[c] * units.Volt(f.GHzF())
}

// Sum combines the guardbands of all cores' licenses at frequency f. The
// largest contribution gets weight CoreWeights[0] (=1), the next largest
// CoreWeights[1], and so on. It runs on every voltage retarget, so the
// descending order is built by insertion into a stack buffer instead of
// a heap-allocated sort (core counts are small).
func (g GuardbandTable) Sum(classes []isa.Class, f units.Hertz) units.Volt {
	var buf [32]float64
	contributions := buf[:0]
	if len(classes) > len(buf) {
		contributions = make([]float64, 0, len(classes))
	}
	for _, c := range classes {
		v := float64(g.Single(c, f))
		if v <= 0 {
			continue
		}
		// Insert v keeping contributions sorted descending.
		i := len(contributions)
		contributions = append(contributions, v)
		for i > 0 && contributions[i-1] < v {
			contributions[i] = contributions[i-1]
			i--
		}
		contributions[i] = v
	}
	var total float64
	for i, v := range contributions {
		total += v * g.weight(i)
	}
	return units.Volt(total)
}

// Max returns the worst-case guardband: every one of n cores running the
// highest-intensity power virus. Secure mode (mitigation 3) pins the
// voltage here.
func (g GuardbandTable) Max(n int, f units.Hertz) units.Volt {
	classes := make([]isa.Class, n)
	for i := range classes {
		classes[i] = isa.Class(isa.NumClasses - 1)
	}
	return g.Sum(classes, f)
}

func (g GuardbandTable) weight(i int) float64 {
	if i >= len(g.CoreWeights) {
		return g.CoreWeights[len(g.CoreWeights)-1]
	}
	return g.CoreWeights[i]
}
