package pmu

import (
	"fmt"
	"math"
	"strconv"

	"ichannels/internal/isa"
	"ichannels/internal/pdn"
	"ichannels/internal/power"
	"ichannels/internal/sched"
	"ichannels/internal/units"
)

// Core is the PMU-facing view of a CPU core. *uarch.Core satisfies it.
type Core interface {
	ID() int
	Busy() bool
	ActiveClass() isa.Class
	GrantLicense(c isa.Class, now units.Time)
	DowngradeLicense(c isa.Class, now units.Time)
	SetFrequency(f units.Hertz, now units.Time)
	SetHalted(h bool, now units.Time)
	SetDutyCycle(d float64, now units.Time)
}

// Config describes the central PMU.
type Config struct {
	Guardband GuardbandTable
	VF        power.VFCurve
	Limits    power.Limits
	Cdyn      power.CdynModel
	Leakage   power.LeakageModel

	// LicenseHysteresis is the paper's reset-time (~650 µs): a license
	// (and its guardband voltage) is held for this long after the last
	// use of its class before decaying to the baseline.
	LicenseHysteresis units.Duration

	// FreqRestoreDelay is how long after a protective frequency
	// reduction the PMU waits before restoring a higher frequency.
	// Milliseconds on real parts — this slowness is what limits
	// TurboCC-style channels.
	FreqRestoreDelay units.Duration

	// FreqStep is the P-state granularity (bus-clock multiples).
	FreqStep units.Hertz

	// PLLRelock is how long all cores halt while the clock retargets.
	PLLRelock units.Duration

	// RequestedFrequency is the operating point software asked for; the
	// PMU caps it to whatever the electrical limits allow.
	RequestedFrequency units.Hertz

	// PerCoreVR gives every core its own regulator (mitigation 1):
	// transitions no longer serialize across cores and each core's
	// guardband covers only its own load.
	PerCoreVR bool

	// VR parametrizes the regulator(s).
	VR pdn.Config
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := c.Guardband.Validate(); err != nil {
		return err
	}
	if err := c.VF.Validate(); err != nil {
		return err
	}
	if err := c.Limits.Validate(); err != nil {
		return err
	}
	if err := c.Cdyn.Validate(); err != nil {
		return err
	}
	if err := c.VR.Validate(); err != nil {
		return err
	}
	if c.LicenseHysteresis <= 0 {
		return fmt.Errorf("pmu: license hysteresis must be positive")
	}
	if c.FreqRestoreDelay < 0 || c.PLLRelock < 0 {
		return fmt.Errorf("pmu: negative frequency-transition latency")
	}
	if c.FreqStep <= 0 {
		return fmt.Errorf("pmu: frequency step must be positive")
	}
	if c.RequestedFrequency <= 0 {
		return fmt.Errorf("pmu: requested frequency must be positive")
	}
	return nil
}

type transKind int

const (
	transGrant transKind = iota
	transRetarget
	transFreqUp
	transFreqDown
)

type transition struct {
	kind   transKind
	core   int
	class  isa.Class
	toFreq units.Hertz
}

// Stats counts PMU activity, exposed for experiments and tests.
type Stats struct {
	Grants          uint64
	Downgrades      uint64
	FreqDownshifts  uint64
	FreqRestores    uint64
	Transitions     uint64
	SerializedWaits uint64 // transitions that had to queue behind another
}

const longAgo = units.Time(math.MinInt64 / 4)

// PMU is the central power management unit.
type PMU struct {
	cfg   Config
	q     *sched.Queue
	cores []Core
	regs  []*pdn.Regulator

	lic       []isa.Class
	lastTouch [][isa.NumClasses]units.Time
	decayEv   []sched.EventRef
	decayFn   []func(units.Time) // prebound per-core decay callbacks
	decayName []string           // precomputed event names

	busy  []bool
	queue [][]transition

	curFreq       units.Hertz
	lastDownshift units.Time
	restoreEv     sched.EventRef
	restoreQueued bool

	secure      bool
	initialized bool

	stats Stats
}

// New creates a PMU. Cores must be attached with AttachCores and the unit
// started with Initialize before any license traffic.
func New(cfg Config, q *sched.Queue) (*PMU, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if q == nil {
		return nil, fmt.Errorf("pmu: nil scheduler")
	}
	return &PMU{cfg: cfg, q: q}, nil
}

// AttachCores registers the cores the PMU manages.
func (p *PMU) AttachCores(cores []Core) error {
	if p.initialized {
		return fmt.Errorf("pmu: AttachCores after Initialize")
	}
	if len(cores) == 0 {
		return fmt.Errorf("pmu: no cores")
	}
	p.cores = cores
	n := len(cores)
	p.lic = make([]isa.Class, n)
	p.lastTouch = make([][isa.NumClasses]units.Time, n)
	for i := range p.lastTouch {
		for c := range p.lastTouch[i] {
			p.lastTouch[i][c] = longAgo
		}
	}
	p.decayEv = make([]sched.EventRef, n)
	// The decay check reschedules itself on every license touch window;
	// binding the callback and its event name once per core keeps that
	// hot path free of per-schedule closure and string allocations.
	p.decayFn = make([]func(units.Time), n)
	p.decayName = make([]string, n)
	for i := 0; i < n; i++ {
		coreID := i
		p.decayName[i] = "pmu.decay.core" + strconv.Itoa(coreID)
		p.decayFn[i] = func(now units.Time) {
			p.decayEv[coreID] = sched.EventRef{}
			p.decayCheck(coreID, now)
		}
	}
	nregs := 1
	if p.cfg.PerCoreVR {
		nregs = n
	}
	p.busy = make([]bool, nregs)
	p.queue = make([][]transition, nregs)
	return nil
}

// Initialize settles the PMU at the requested operating point: frequency
// capped by the electrical limits for an all-scalar machine, regulators at
// the corresponding base voltage.
func (p *PMU) Initialize() error {
	if p.cores == nil {
		return fmt.Errorf("pmu: Initialize before AttachCores")
	}
	if p.initialized {
		return fmt.Errorf("pmu: double Initialize")
	}
	now := p.q.Now()
	f := p.maxFreqAllowed(p.licSnapshot())
	if f <= 0 {
		return fmt.Errorf("pmu: no frequency satisfies the electrical limits even for scalar code")
	}
	p.curFreq = f
	for _, c := range p.cores {
		c.SetFrequency(f, now)
	}
	v0 := p.cfg.VF.Voltage(f)
	nregs := len(p.busy)
	p.regs = make([]*pdn.Regulator, nregs)
	for i := range p.regs {
		r, err := pdn.NewRegulator(p.cfg.VR, v0)
		if err != nil {
			return err
		}
		p.regs[i] = r
	}
	p.lastDownshift = longAgo
	p.initialized = true
	return nil
}

// Reset returns an initialized PMU to its just-initialized state under a
// (possibly updated) configuration, reusing the attached cores, regulators,
// and every internal slice — the in-place form a pooled machine uses. The
// regulator topology must not change (machine pools key on PerCoreVR), and
// the shared scheduler must have been reset first.
func (p *PMU) Reset(cfg Config) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if !p.initialized {
		return fmt.Errorf("pmu: Reset before Initialize")
	}
	if cfg.PerCoreVR != p.cfg.PerCoreVR {
		return fmt.Errorf("pmu: Reset cannot change regulator topology")
	}
	p.cfg = cfg
	p.secure = false
	p.stats = Stats{}
	p.restoreQueued = false
	p.restoreEv = sched.EventRef{}
	for i := range p.lic {
		p.lic[i] = isa.Scalar64
		p.decayEv[i] = sched.EventRef{}
		for c := range p.lastTouch[i] {
			p.lastTouch[i][c] = longAgo
		}
	}
	for i := range p.busy {
		p.busy[i] = false
		p.queue[i] = p.queue[i][:0]
	}
	// Re-settle at the requested operating point, exactly as Initialize.
	now := p.q.Now()
	f := p.maxFreqAllowed(p.lic)
	if f <= 0 {
		return fmt.Errorf("pmu: no frequency satisfies the electrical limits even for scalar code")
	}
	p.curFreq = f
	for _, c := range p.cores {
		c.SetFrequency(f, now)
	}
	v0 := p.cfg.VF.Voltage(f)
	for _, r := range p.regs {
		if err := r.Reset(p.cfg.VR, v0); err != nil {
			return err
		}
	}
	p.lastDownshift = longAgo
	return nil
}

// Stats returns a copy of the PMU activity counters.
func (p *PMU) Stats() Stats { return p.stats }

// Frequency returns the current core clock frequency.
func (p *PMU) Frequency() units.Hertz { return p.curFreq }

// Licenses returns a copy of the per-core granted licenses.
func (p *PMU) Licenses() []isa.Class {
	out := make([]isa.Class, len(p.lic))
	copy(out, p.lic)
	return out
}

// Voltage returns the instantaneous output of the regulator feeding core
// coreID (the shared regulator when PerCoreVR is off).
func (p *PMU) Voltage(coreID int, now units.Time) units.Volt {
	return p.regs[p.regIndex(coreID)].Voltage(now)
}

// TargetVoltage returns the voltage the regulator for coreID is settling
// toward.
func (p *PMU) TargetVoltage(coreID int) units.Volt {
	return p.regs[p.regIndex(coreID)].Target()
}

// Secure reports whether secure mode is active.
func (p *PMU) Secure() bool { return p.secure }

// RequestedFrequency returns the software-requested operating point.
func (p *PMU) RequestedFrequency() units.Hertz { return p.cfg.RequestedFrequency }

// SetRequestedFrequency changes the software-requested operating point at
// runtime — the hardware-visible effect of a governor or sysfs frequency
// write (the mechanism the DFScovert baseline modulates). Downward changes
// queue a protective-style downshift; upward changes go through the normal
// restore path (and still respect the electrical limits).
func (p *PMU) SetRequestedFrequency(f units.Hertz) {
	p.mustInit()
	if f <= 0 {
		panic(fmt.Sprintf("pmu: non-positive requested frequency %v", f))
	}
	p.cfg.RequestedFrequency = f
	if f < p.curFreq {
		p.enqueue(0, transition{kind: transFreqDown, toFreq: f})
		return
	}
	// Allow an immediate restore: a deliberate software request is not
	// subject to the protection hold-off.
	p.lastDownshift = longAgo
	p.maybeRestoreFrequency(p.q.Now())
}

// SetClockDuty programs the package-wide clock-modulation duty cycle — the
// hardware-visible effect of writing IA32_CLOCK_MODULATION (T-states). The
// front-end of every core delivers uops only in the on fraction d of cycles;
// d == 1 disables modulation. Unlike frequency changes this takes effect
// immediately: no PLL relock, no protective hold-off — which is exactly why
// duty cycling makes a faster covert-channel carrier than DVFS.
func (p *PMU) SetClockDuty(d float64) {
	p.mustInit()
	if d <= 0 || d > 1 {
		panic(fmt.Sprintf("pmu: clock duty %v outside (0,1]", d))
	}
	now := p.q.Now()
	for _, c := range p.cores {
		c.SetDutyCycle(d, now)
	}
}

// SetSecure enables or disables secure mode (mitigation 3): the voltage is
// pinned at the worst-case power-virus guardband so PHI execution never
// needs a transition, and license requests are granted instantly without
// throttling. Callers should allow the initial ramp to settle before
// relying on the no-throttle property.
func (p *PMU) SetSecure(on bool) {
	if on == p.secure {
		return
	}
	p.secure = on
	// Re-aim every regulator at the (new) target; in secure mode that is
	// the worst-case guardband, out of it the current licenses' level.
	for ri := range p.regs {
		p.enqueue(ri, transition{kind: transRetarget})
	}
}

// regIndex maps a core to its regulator.
func (p *PMU) regIndex(coreID int) int {
	if p.cfg.PerCoreVR {
		return coreID
	}
	return 0
}

// RequestLicense implements uarch.CurrentManager: a core needs its license
// raised to class c. The grant arrives via Core.GrantLicense when the
// backing voltage transition completes (immediately in secure mode).
func (p *PMU) RequestLicense(coreID int, c isa.Class) {
	p.mustInit()
	p.touch(coreID, c)
	if p.secure {
		// Voltage already pinned at worst case: nothing to ramp.
		p.stats.Grants++
		if c > p.lic[coreID] {
			p.lic[coreID] = c
		}
		p.cores[coreID].GrantLicense(c, p.q.Now())
		return
	}
	p.enqueue(p.regIndex(coreID), transition{kind: transGrant, core: coreID, class: c})
}

// TouchLicense implements uarch.CurrentManager: class c was used on the
// core, refreshing its reset-time window.
func (p *PMU) TouchLicense(coreID int, c isa.Class) {
	p.mustInit()
	p.touch(coreID, c)
}

func (p *PMU) mustInit() {
	if !p.initialized {
		panic("pmu: used before Initialize")
	}
}

func (p *PMU) touch(coreID int, c isa.Class) {
	if !c.PHI() {
		return
	}
	now := p.q.Now()
	p.lastTouch[coreID][c] = now
	if p.decayEv[coreID].Cancelled() {
		p.scheduleDecay(coreID, now.Add(p.cfg.LicenseHysteresis))
	}
}

func (p *PMU) scheduleDecay(coreID int, at units.Time) {
	p.decayEv[coreID] = p.q.At(at, p.decayName[coreID], p.decayFn[coreID])
}

// effectiveDemand returns the highest class the core is entitled to keep a
// license for: anything touched within the hysteresis window or actively
// executing right now.
func (p *PMU) effectiveDemand(coreID int, now units.Time) isa.Class {
	eff := p.cores[coreID].ActiveClass()
	horizon := now.Add(-units.Duration(p.cfg.LicenseHysteresis))
	for c := isa.NumClasses - 1; c > int(isa.Scalar64); c-- {
		if isa.Class(c) <= eff {
			break
		}
		if p.lastTouch[coreID][c] >= horizon {
			eff = isa.Class(c)
			break
		}
	}
	return eff
}

func (p *PMU) decayCheck(coreID int, now units.Time) {
	eff := p.effectiveDemand(coreID, now)
	if eff < p.lic[coreID] && !p.secure {
		p.lic[coreID] = eff
		p.stats.Downgrades++
		p.cores[coreID].DowngradeLicense(eff, now)
		p.enqueue(p.regIndex(coreID), transition{kind: transRetarget})
		p.maybeRestoreFrequency(now)
	}
	// Schedule the next check at the earliest future expiry, if any
	// class remains in its window or in active use.
	next := units.Time(math.MaxInt64)
	horizon := now.Add(-units.Duration(p.cfg.LicenseHysteresis))
	for c := int(isa.Scalar64) + 1; c < isa.NumClasses; c++ {
		if t := p.lastTouch[coreID][c]; t >= horizon {
			if e := t.Add(p.cfg.LicenseHysteresis); e < next {
				next = e
			}
		}
	}
	if p.cores[coreID].ActiveClass().PHI() {
		if e := now.Add(p.cfg.LicenseHysteresis); e < next {
			next = e
		}
	}
	if next < units.Time(math.MaxInt64) {
		if next <= now {
			next = now.Add(1)
		}
		p.scheduleDecay(coreID, next)
	}
}

// licSnapshot copies the granted licenses.
func (p *PMU) licSnapshot() []isa.Class {
	out := make([]isa.Class, len(p.lic))
	copy(out, p.lic)
	return out
}

// targetVoltage computes the voltage regulator ri should hold for the
// given per-core licenses at frequency f.
func (p *PMU) targetVoltage(ri int, licenses []isa.Class, f units.Hertz) units.Volt {
	base := p.cfg.VF.Voltage(f)
	if p.secure {
		n := len(p.cores)
		if p.cfg.PerCoreVR {
			n = 1
		}
		return base + p.cfg.Guardband.Max(n, f)
	}
	if p.cfg.PerCoreVR {
		return base + p.cfg.Guardband.Single(licenses[ri], f)
	}
	return base + p.cfg.Guardband.Sum(licenses, f)
}

// projectedIcc estimates worst-case supply current: every busy core drawing
// its licensed class's power-virus current, idle cores at idle Cdyn, plus
// leakage at a conservative temperature.
func (p *PMU) projectedIcc(licenses []isa.Class, v units.Volt, f units.Hertz) units.Ampere {
	var cdyn float64
	for i, c := range p.cores {
		if c.Busy() {
			cdyn += p.cfg.Cdyn.PerClass[licenses[i]]
		} else {
			cdyn += p.cfg.Cdyn.Idle
		}
	}
	icc := power.DynamicCurrent(cdyn, v, f)
	icc += p.cfg.Leakage.Current(v, 70)
	return icc
}

// maxFreqAllowed returns the highest frequency ≤ the requested operating
// point at which the given licenses fit both the Vccmax and Iccmax limits.
// Returns 0 if even the lowest step violates them.
func (p *PMU) maxFreqAllowed(licenses []isa.Class) units.Hertz {
	for f := p.cfg.RequestedFrequency; f >= p.cfg.FreqStep; f -= p.cfg.FreqStep {
		var v units.Volt
		if p.secure {
			v = p.cfg.VF.Voltage(f) + p.cfg.Guardband.Max(len(p.cores), f)
		} else {
			v = p.cfg.VF.Voltage(f) + p.cfg.Guardband.Sum(licenses, f)
		}
		if v > p.cfg.Limits.VccMax {
			continue
		}
		if p.projectedIcc(licenses, v, f) > p.cfg.Limits.IccMax {
			continue
		}
		return f
	}
	return 0
}

// enqueue adds a transition to regulator ri's serialized queue and kicks
// processing. This serialization — one voltage transition in flight per
// regulator, requests from other cores waiting behind it — is the
// mechanism behind Multi-Throttling-Cores (paper §4.3.1).
func (p *PMU) enqueue(ri int, tr transition) {
	if p.busy[ri] || len(p.queue[ri]) > 0 {
		p.stats.SerializedWaits++
	}
	p.queue[ri] = append(p.queue[ri], tr)
	p.kick(ri)
}

func (p *PMU) kick(ri int) {
	if p.busy[ri] || len(p.queue[ri]) == 0 {
		return
	}
	tr := p.queue[ri][0]
	p.queue[ri] = p.queue[ri][1:]
	p.busy[ri] = true
	p.stats.Transitions++
	p.process(ri, tr)
}

func (p *PMU) finish(ri int) {
	p.busy[ri] = false
	p.maybeRestoreFrequency(p.q.Now())
	p.kick(ri)
}

func (p *PMU) process(ri int, tr transition) {
	now := p.q.Now()
	switch tr.kind {
	case transGrant:
		tentative := p.licSnapshot()
		if tr.class > tentative[tr.core] {
			tentative[tr.core] = tr.class
		}
		fOK := p.maxFreqAllowed(tentative)
		if fOK <= 0 {
			fOK = p.cfg.FreqStep
		}
		if fOK < p.curFreq {
			// Iccmax/Vccmax protection: reduce frequency before
			// raising the guardband (paper §5.3).
			p.downshiftThen(fOK, func(units.Time) { p.rampForGrant(ri, tr, tentative) })
			return
		}
		p.rampForGrant(ri, tr, tentative)

	case transRetarget:
		target := p.targetVoltage(ri, p.lic, p.curFreq)
		settle := p.regs[ri].SetTarget(now, target)
		p.q.At(settle, "pmu.retarget.settle", func(units.Time) { p.finish(ri) })

	case transFreqDown:
		to := tr.toFreq
		if to >= p.curFreq {
			p.finish(ri)
			return
		}
		// Switch the clock first, then relax the voltage to the new
		// operating point.
		p.switchFrequency(to, now, func(t2 units.Time) {
			target := p.targetVoltage(ri, p.lic, to)
			settle := p.regs[ri].SetTarget(t2, target)
			p.q.At(settle, "pmu.freqdown.vsettle", func(units.Time) { p.finish(ri) })
		})

	case transFreqUp:
		fOK := p.maxFreqAllowed(p.lic)
		to := tr.toFreq
		if to > fOK {
			to = fOK
		}
		if to <= p.curFreq {
			p.restoreQueued = false
			p.finish(ri)
			return
		}
		// Raise the voltage for the new frequency first, then relock
		// the PLL.
		target := p.targetVoltage(ri, p.lic, to)
		settle := p.regs[ri].SetTarget(now, target)
		p.q.At(settle, "pmu.frequp.vsettle", func(t2 units.Time) {
			p.switchFrequency(to, t2, func(units.Time) {
				p.stats.FreqRestores++
				p.restoreQueued = false
				p.finish(ri)
			})
		})
	}
}

func (p *PMU) rampForGrant(ri int, tr transition, tentative []isa.Class) {
	now := p.q.Now()
	target := p.targetVoltage(ri, tentative, p.curFreq)
	settle := p.regs[ri].SetTarget(now, target)
	p.q.At(settle, "pmu.grant.settle", func(t2 units.Time) {
		if tr.class > p.lic[tr.core] {
			p.lic[tr.core] = tr.class
		}
		p.stats.Grants++
		p.cores[tr.core].GrantLicense(tr.class, t2)
		p.finish(ri)
	})
}

// downshiftThen halts all cores, relocks the PLL at the lower frequency,
// resumes, and then continues with cont.
func (p *PMU) downshiftThen(to units.Hertz, cont func(units.Time)) {
	now := p.q.Now()
	p.stats.FreqDownshifts++
	p.lastDownshift = now
	p.switchFrequency(to, now, cont)
	// Plan a restore check once the protection window has passed.
	p.scheduleRestoreCheck(now.Add(p.cfg.FreqRestoreDelay))
}

// switchFrequency performs the PLL relock: all cores halt for PLLRelock,
// then run at the new frequency.
func (p *PMU) switchFrequency(to units.Hertz, now units.Time, cont func(units.Time)) {
	for _, c := range p.cores {
		c.SetHalted(true, now)
	}
	p.q.At(now.Add(p.cfg.PLLRelock), "pmu.pll.relock", func(t2 units.Time) {
		p.curFreq = to
		for _, c := range p.cores {
			c.SetFrequency(to, t2)
			c.SetHalted(false, t2)
		}
		if cont != nil {
			cont(t2)
		}
	})
}

func (p *PMU) scheduleRestoreCheck(at units.Time) {
	if !p.restoreEv.Cancelled() && p.restoreEv.Time() <= at {
		return
	}
	p.q.Cancel(p.restoreEv)
	p.restoreEv = p.q.At(at, "pmu.freq.restorecheck", func(now units.Time) {
		p.restoreEv = sched.EventRef{}
		p.maybeRestoreFrequency(now)
	})
}

// maybeRestoreFrequency queues a frequency-up transition when the
// protection window has elapsed and the current licenses allow a higher
// operating point again.
func (p *PMU) maybeRestoreFrequency(now units.Time) {
	if p.curFreq >= p.cfg.RequestedFrequency || p.restoreQueued {
		return
	}
	if now.Sub(p.lastDownshift) < p.cfg.FreqRestoreDelay {
		p.scheduleRestoreCheck(p.lastDownshift.Add(p.cfg.FreqRestoreDelay))
		return
	}
	fOK := p.maxFreqAllowed(p.lic)
	if fOK > p.curFreq {
		p.restoreQueued = true
		p.enqueue(0, transition{kind: transFreqUp, toFreq: fOK})
	}
}
