package pmu

import (
	"testing"

	"ichannels/internal/isa"
	"ichannels/internal/units"
)

// Additional PMU behaviours: secure-mode exit, multi-core decay ordering,
// voltage-level bookkeeping across mixed licenses, and re-request flows.

func TestSecureModeExitRestoresNormalOperation(t *testing.T) {
	p, q, cores := newTestPMU(t, testConfig(), 1)
	p.SetSecure(true)
	q.RunUntil(units.Time(200 * units.Microsecond))
	p.SetSecure(false)
	q.RunUntil(units.Time(400 * units.Microsecond))
	// After leaving secure mode with no licenses, voltage returns to the
	// baseline and requests ramp again.
	base := testConfig().VF.Voltage(p.Frequency())
	if v := p.Voltage(0, q.Now()); v != base {
		t.Fatalf("voltage %v after secure exit, want baseline %v", v, base)
	}
	cores[0].busy = true
	cores[0].active = isa.Vec256Heavy
	before := q.Now()
	p.RequestLicense(0, isa.Vec256Heavy)
	q.RunUntil(before.Add(100 * units.Microsecond))
	if len(cores[0].granted) != 1 {
		t.Fatal("post-secure request not granted")
	}
	if cores[0].grantTimes[0] == before {
		t.Fatal("post-secure grant must pay the ramp again")
	}
}

func TestSecureModeIdempotent(t *testing.T) {
	p, q, _ := newTestPMU(t, testConfig(), 1)
	p.SetSecure(true)
	trans := p.Stats().Transitions
	p.SetSecure(true) // no-op
	if p.Stats().Transitions != trans {
		t.Fatal("re-enabling secure mode queued another transition")
	}
	q.RunUntil(units.Time(300 * units.Microsecond))
}

func TestMixedLicensesVoltageLevel(t *testing.T) {
	cfg := testConfig()
	p, q, cores := newTestPMU(t, cfg, 2)
	cores[0].busy, cores[1].busy = true, true
	cores[0].active, cores[1].active = isa.Vec512Heavy, isa.Vec128Heavy
	p.RequestLicense(0, isa.Vec512Heavy)
	p.RequestLicense(1, isa.Vec128Heavy)
	q.RunUntil(units.Time(300 * units.Microsecond))
	want := cfg.VF.Voltage(p.Frequency()) +
		cfg.Guardband.Sum([]isa.Class{isa.Vec512Heavy, isa.Vec128Heavy}, p.Frequency())
	got := p.Voltage(0, q.Now())
	if d := float64(got - want); d > 1e-9 || d < -1e-9 {
		t.Fatalf("settled voltage %v, want %v", got, want)
	}
}

func TestPartialDecaySteps(t *testing.T) {
	// A core that used 512H once but keeps using 128H decays to 128H
	// (not to scalar) when the 512H window expires.
	p, q, cores := newTestPMU(t, testConfig(), 1)
	cores[0].busy = true
	cores[0].active = isa.Vec512Heavy
	p.RequestLicense(0, isa.Vec512Heavy)
	q.RunUntil(units.Time(60 * units.Microsecond))
	// Switch to sustained 128H use: refresh its window regularly.
	cores[0].active = isa.Vec128Heavy
	for i := 0; i < 10; i++ {
		p.TouchLicense(0, isa.Vec128Heavy)
		q.RunUntil(q.Now().Add(100 * units.Microsecond))
	}
	if len(cores[0].downgrades) == 0 {
		t.Fatal("512H license must have decayed")
	}
	if got := cores[0].downgrades[0]; got != isa.Vec128Heavy {
		t.Fatalf("decayed to %v, want 128b_Heavy (still in use)", got)
	}
}

func TestRepeatRequestAfterDecayRampsAgain(t *testing.T) {
	p, q, cores := newTestPMU(t, testConfig(), 1)
	cores[0].busy = true
	cores[0].active = isa.Vec256Heavy
	p.RequestLicense(0, isa.Vec256Heavy)
	q.RunUntil(units.Time(60 * units.Microsecond))
	tp1 := cores[0].grantTimes[0].Microseconds()
	// Let it decay fully.
	cores[0].busy = false
	cores[0].active = isa.Scalar64
	q.RunUntil(units.Time(900 * units.Microsecond))
	// Request again: same ramp length from baseline.
	cores[0].busy = true
	cores[0].active = isa.Vec256Heavy
	start := q.Now()
	p.RequestLicense(0, isa.Vec256Heavy)
	q.RunUntil(start.Add(100 * units.Microsecond))
	if len(cores[0].granted) != 2 {
		t.Fatalf("grants = %d", len(cores[0].granted))
	}
	tp2 := (cores[0].grantTimes[1] - start).Microseconds()
	if diff := tp2 - tp1; diff > 0.5 || diff < -0.5 {
		t.Fatalf("second ramp %g µs differs from first %g µs", tp2, tp1)
	}
}

func TestLowerRequestWhileHigherHeld(t *testing.T) {
	// Requesting 128H while already holding 512H must grant instantly
	// with no transition (voltage already sufficient).
	p, q, cores := newTestPMU(t, testConfig(), 1)
	cores[0].busy = true
	cores[0].active = isa.Vec512Heavy
	p.RequestLicense(0, isa.Vec512Heavy)
	q.RunUntil(units.Time(80 * units.Microsecond))
	v := p.Voltage(0, q.Now())
	p.RequestLicense(0, isa.Vec128Heavy)
	q.RunUntil(q.Now().Add(30 * units.Microsecond))
	if p.Voltage(0, q.Now()) != v {
		t.Fatal("lower-class request must not move the voltage")
	}
	if p.Licenses()[0] != isa.Vec512Heavy {
		t.Fatal("license must stay at the higher class")
	}
}

func TestVccmaxBindsBeforeIccmax(t *testing.T) {
	// With a tight Vccmax the grant path must downshift even when the
	// current budget is fine.
	cfg := testConfig()
	cfg.Limits.VccMax = cfg.VF.Voltage(2.2*units.GHz) + units.MV(20)
	cfg.Limits.IccMax = 1000
	p, q, cores := newTestPMU(t, cfg, 1)
	cores[0].busy = true
	cores[0].active = isa.Vec512Heavy
	p.RequestLicense(0, isa.Vec512Heavy) // needs 13.5×2.2 ≈ 29.7 mV > 20 mV headroom
	q.RunUntil(units.Time(300 * units.Microsecond))
	if p.Frequency() >= 2.2*units.GHz {
		t.Fatalf("Vccmax protection did not downshift: %v", p.Frequency())
	}
	if len(cores[0].granted) != 1 {
		t.Fatal("grant must still land after the downshift")
	}
}

func TestStatsAccounting(t *testing.T) {
	p, q, cores := newTestPMU(t, testConfig(), 2)
	cores[0].busy, cores[1].busy = true, true
	cores[0].active, cores[1].active = isa.Vec256Heavy, isa.Vec256Heavy
	p.RequestLicense(0, isa.Vec256Heavy)
	p.RequestLicense(1, isa.Vec256Heavy)
	q.RunUntil(units.Time(300 * units.Microsecond))
	st := p.Stats()
	if st.Grants != 2 {
		t.Fatalf("grants = %d", st.Grants)
	}
	if st.Transitions < 2 {
		t.Fatalf("transitions = %d", st.Transitions)
	}
	cores[0].busy, cores[1].busy = false, false
	cores[0].active, cores[1].active = isa.Scalar64, isa.Scalar64
	q.RunUntil(units.Time(2 * units.Millisecond))
	if p.Stats().Downgrades != 2 {
		t.Fatalf("downgrades = %d", p.Stats().Downgrades)
	}
}
