package pmu

import (
	"testing"
	"testing/quick"

	"ichannels/internal/isa"
	"ichannels/internal/pdn"
	"ichannels/internal/power"
	"ichannels/internal/sched"
	"ichannels/internal/units"
)

// fakeCore implements the Core interface with scriptable state.
type fakeCore struct {
	id         int
	busy       bool
	active     isa.Class
	granted    []isa.Class
	grantTimes []units.Time
	downgrades []isa.Class
	freq       units.Hertz
	halts      int
	halted     bool
	duty       float64
}

func (f *fakeCore) ID() int                { return f.id }
func (f *fakeCore) Busy() bool             { return f.busy }
func (f *fakeCore) ActiveClass() isa.Class { return f.active }
func (f *fakeCore) GrantLicense(c isa.Class, now units.Time) {
	f.granted = append(f.granted, c)
	f.grantTimes = append(f.grantTimes, now)
}
func (f *fakeCore) DowngradeLicense(c isa.Class, now units.Time) {
	f.downgrades = append(f.downgrades, c)
}
func (f *fakeCore) SetFrequency(fr units.Hertz, now units.Time) { f.freq = fr }
func (f *fakeCore) SetDutyCycle(d float64, now units.Time)      { f.duty = d }
func (f *fakeCore) SetHalted(h bool, now units.Time) {
	f.halted = h
	if h {
		f.halts++
	}
}

func testGuardband() GuardbandTable {
	return GuardbandTable{
		PerClassPerGHz: [isa.NumClasses]units.Volt{
			0, units.MV(1), units.MV(3.5), units.MV(6), units.MV(8.5), units.MV(10.5), units.MV(13.5),
		},
		CoreWeights: []float64{1.0, 0.8},
	}
}

func testConfig() Config {
	var cdyn power.CdynModel
	for i := range cdyn.PerClass {
		cdyn.PerClass[i] = float64(i+2) * 1e-9
	}
	cdyn.Idle = 0.25e-9
	return Config{
		Guardband:          testGuardband(),
		VF:                 power.VFCurve{V0: 0.5465, K1: 0.0312, K2: 0.04233},
		Limits:             power.Limits{IccMax: 29, VccMax: 1.15, TjMax: 100},
		Cdyn:               cdyn,
		Leakage:            power.LeakageModel{IRef: 2, VRef: 0.82, TempCoeff: 0.008, TRef: 50},
		LicenseHysteresis:  650 * units.Microsecond,
		FreqRestoreDelay:   15 * units.Millisecond,
		FreqStep:           100 * units.MHz,
		PLLRelock:          7 * units.Microsecond,
		RequestedFrequency: 2.2 * units.GHz,
		VR:                 pdn.DefaultConfig(pdn.MBVR),
	}
}

func newTestPMU(t *testing.T, cfg Config, ncores int) (*PMU, *sched.Queue, []*fakeCore) {
	t.Helper()
	q := sched.NewQueue()
	p, err := New(cfg, q)
	if err != nil {
		t.Fatal(err)
	}
	fakes := make([]*fakeCore, ncores)
	cores := make([]Core, ncores)
	for i := range fakes {
		fakes[i] = &fakeCore{id: i}
		cores[i] = fakes[i]
	}
	if err := p.AttachCores(cores); err != nil {
		t.Fatal(err)
	}
	if err := p.Initialize(); err != nil {
		t.Fatal(err)
	}
	return p, q, fakes
}

func TestSetClockDutyFansOut(t *testing.T) {
	p, _, fakes := newTestPMU(t, testConfig(), 2)
	p.SetClockDuty(0.25)
	for i, f := range fakes {
		if f.duty != 0.25 {
			t.Fatalf("core %d duty = %g, want 0.25", i, f.duty)
		}
	}
	p.SetClockDuty(1)
	if fakes[0].duty != 1 {
		t.Fatalf("duty = %g after restore", fakes[0].duty)
	}
	for _, d := range []float64{0, -1, 1.01} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("duty %g accepted", d)
				}
			}()
			p.SetClockDuty(d)
		}()
	}
}

func TestGuardbandValidate(t *testing.T) {
	if err := testGuardband().Validate(); err != nil {
		t.Fatalf("valid table rejected: %v", err)
	}
	bad := testGuardband()
	bad.PerClassPerGHz[0] = units.MV(1)
	if bad.Validate() == nil {
		t.Error("nonzero scalar guardband accepted")
	}
	bad = testGuardband()
	bad.PerClassPerGHz[3] = units.MV(2) // below class 2
	if bad.Validate() == nil {
		t.Error("non-monotone table accepted")
	}
	bad = testGuardband()
	bad.CoreWeights = nil
	if bad.Validate() == nil {
		t.Error("missing weights accepted")
	}
	bad = testGuardband()
	bad.CoreWeights = []float64{0.9}
	if bad.Validate() == nil {
		t.Error("first weight ≠ 1 accepted")
	}
}

func TestGuardbandSingleScalesWithFrequency(t *testing.T) {
	g := testGuardband()
	v1 := g.Single(isa.Vec256Heavy, 1*units.GHz)
	v2 := g.Single(isa.Vec256Heavy, 2*units.GHz)
	if v2 < 1.99*v1 || v2 > 2.01*v1 {
		t.Fatalf("guardband not ∝ F: %v vs %v", v1, v2)
	}
}

func TestGuardbandSumWeights(t *testing.T) {
	g := testGuardband()
	one := g.Sum([]isa.Class{isa.Vec256Heavy, isa.Scalar64}, 1*units.GHz)
	two := g.Sum([]isa.Class{isa.Vec256Heavy, isa.Vec256Heavy}, 1*units.GHz)
	// Two equal contributors: 1 + 0.8 = 1.8×.
	if ratio := float64(two / one); ratio < 1.79 || ratio > 1.81 {
		t.Fatalf("two-core ratio = %g, want 1.8", ratio)
	}
}

func TestGuardbandSumOrdersContributions(t *testing.T) {
	g := testGuardband()
	// Mixed classes: the larger contribution must get weight 1.
	mixed := g.Sum([]isa.Class{isa.Vec128Heavy, isa.Vec512Heavy}, 1*units.GHz)
	want := g.Single(isa.Vec512Heavy, 1*units.GHz) + units.Volt(0.8)*g.Single(isa.Vec128Heavy, 1*units.GHz)
	diff := float64(mixed - want)
	if diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("mixed sum = %v, want %v", mixed, want)
	}
}

func TestGuardbandMax(t *testing.T) {
	g := testGuardband()
	if g.Max(2, 1*units.GHz) != g.Sum([]isa.Class{isa.Vec512Heavy, isa.Vec512Heavy}, 1*units.GHz) {
		t.Fatal("Max must equal all-cores-512H sum")
	}
}

// Property: Sum is monotone — upgrading any core's class never lowers the
// total guardband.
func TestPropertyGuardbandMonotone(t *testing.T) {
	g := testGuardband()
	f := func(a, b uint8) bool {
		c1 := isa.Class(int(a) % isa.NumClasses)
		c2 := isa.Class(int(b) % isa.NumClasses)
		base := g.Sum([]isa.Class{c1, c2}, 2*units.GHz)
		if int(c1) < isa.NumClasses-1 {
			up := g.Sum([]isa.Class{c1 + 1, c2}, 2*units.GHz)
			if up < base {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLicenseGrantAfterRamp(t *testing.T) {
	p, q, cores := newTestPMU(t, testConfig(), 2)
	cores[0].busy = true
	cores[0].active = isa.Vec256Heavy
	p.RequestLicense(0, isa.Vec256Heavy)
	if len(cores[0].granted) != 0 {
		t.Fatal("grant must wait for the voltage ramp")
	}
	q.RunUntil(units.Time(100 * units.Microsecond))
	if len(cores[0].granted) != 1 || cores[0].granted[0] != isa.Vec256Heavy {
		t.Fatalf("granted = %v", cores[0].granted)
	}
	// TP = SVID latency (1.5 µs) + 8.5 mV × 2.2 / 1 mV/µs ≈ 20.2 µs.
	tp := cores[0].grantTimes[0].Microseconds()
	if tp < 19 || tp < 0 || tp > 22 {
		t.Fatalf("grant at %g µs", tp)
	}
	if p.Licenses()[0] != isa.Vec256Heavy {
		t.Fatal("PMU license not updated")
	}
}

func TestSerializedTransitions(t *testing.T) {
	p, q, cores := newTestPMU(t, testConfig(), 2)
	cores[0].busy, cores[1].busy = true, true
	cores[0].active, cores[1].active = isa.Vec256Heavy, isa.Vec128Heavy
	p.RequestLicense(0, isa.Vec256Heavy)
	p.RequestLicense(1, isa.Vec128Heavy)
	q.RunUntil(units.Time(200 * units.Microsecond))
	if len(cores[0].granted) != 1 || len(cores[1].granted) != 1 {
		t.Fatal("both grants must eventually land")
	}
	// Core 1's grant must come strictly after core 0's (FIFO on the VR).
	if !(cores[1].grantTimes[0] > cores[0].grantTimes[0]) {
		t.Fatalf("grants not serialized: %v vs %v", cores[1].grantTimes[0], cores[0].grantTimes[0])
	}
	if p.Stats().SerializedWaits == 0 {
		t.Fatal("second request should have queued")
	}
}

func TestLicenseDecayAfterHysteresis(t *testing.T) {
	p, q, cores := newTestPMU(t, testConfig(), 1)
	cores[0].busy = true
	cores[0].active = isa.Vec256Heavy
	p.RequestLicense(0, isa.Vec256Heavy)
	q.RunUntil(units.Time(50 * units.Microsecond))
	// The core goes idle; the license must decay ~650 µs after last use.
	cores[0].busy = false
	cores[0].active = isa.Scalar64
	q.RunUntil(units.Time(500 * units.Microsecond))
	if len(cores[0].downgrades) != 0 {
		t.Fatal("license decayed before the hysteresis")
	}
	q.RunUntil(units.Time(800 * units.Microsecond))
	if len(cores[0].downgrades) != 1 || cores[0].downgrades[0] != isa.Scalar64 {
		t.Fatalf("downgrades = %v", cores[0].downgrades)
	}
	// Voltage must return to the baseline after the down-ramp.
	q.RunUntil(units.Time(900 * units.Microsecond))
	base := testConfig().VF.Voltage(p.Frequency())
	v := p.Voltage(0, q.Now())
	if d := float64(v - base); d > 1e-6 || d < -1e-6 {
		t.Fatalf("voltage %v, want baseline %v", v, base)
	}
}

func TestActiveUseBlocksDecay(t *testing.T) {
	p, q, cores := newTestPMU(t, testConfig(), 1)
	cores[0].busy = true
	cores[0].active = isa.Vec256Heavy
	p.RequestLicense(0, isa.Vec256Heavy)
	// The core keeps executing 256H past the hysteresis window.
	q.RunUntil(units.Time(2 * units.Millisecond))
	if len(cores[0].downgrades) != 0 {
		t.Fatal("license must not decay while the class is in active use")
	}
}

func TestIccmaxProtectionDownshifts(t *testing.T) {
	cfg := testConfig()
	cfg.RequestedFrequency = 3.1 * units.GHz
	p, q, cores := newTestPMU(t, cfg, 2)
	if p.Frequency() != 3.1*units.GHz {
		t.Fatalf("initial frequency %v", p.Frequency())
	}
	cores[0].busy, cores[1].busy = true, true
	cores[0].active = isa.Vec512Heavy
	cores[1].active = isa.Scalar64
	p.RequestLicense(0, isa.Vec512Heavy)
	q.RunUntil(units.Time(300 * units.Microsecond))
	if p.Frequency() >= 3.1*units.GHz {
		t.Fatalf("no protective downshift: %v", p.Frequency())
	}
	if p.Stats().FreqDownshifts == 0 {
		t.Fatal("downshift not counted")
	}
	if cores[0].halts == 0 {
		t.Fatal("PLL relock must halt the cores")
	}
	if cores[0].halted || cores[1].halted {
		t.Fatal("cores must resume after the relock")
	}
}

func TestFrequencyRestoresAfterDelay(t *testing.T) {
	cfg := testConfig()
	cfg.RequestedFrequency = 3.1 * units.GHz
	p, q, cores := newTestPMU(t, cfg, 2)
	cores[0].busy, cores[1].busy = true, true
	cores[0].active = isa.Vec512Heavy
	cores[1].active = isa.Scalar64
	p.RequestLicense(0, isa.Vec512Heavy)
	q.RunUntil(units.Time(300 * units.Microsecond))
	down := p.Frequency()
	if down >= 3.1*units.GHz {
		t.Fatalf("expected downshift, at %v", down)
	}
	// PHI stops; license decays; after the restore delay the Turbo bin
	// must come back.
	cores[0].active = isa.Scalar64
	cores[0].busy = false
	q.RunUntil(units.Time(30 * units.Millisecond))
	if p.Frequency() != 3.1*units.GHz {
		t.Fatalf("frequency not restored: %v", p.Frequency())
	}
	if p.Stats().FreqRestores == 0 {
		t.Fatal("restore not counted")
	}
}

func TestSecureModeGrantsInstantly(t *testing.T) {
	p, q, cores := newTestPMU(t, testConfig(), 2)
	p.SetSecure(true)
	q.RunUntil(units.Time(200 * units.Microsecond)) // worst-case ramp settles
	vSecure := p.Voltage(0, q.Now())
	base := testConfig().VF.Voltage(p.Frequency())
	if vSecure <= base {
		t.Fatal("secure mode must pin an elevated guardband")
	}
	before := q.Now()
	p.RequestLicense(0, isa.Vec512Heavy)
	if len(cores[0].granted) != 1 || cores[0].grantTimes[0] != before {
		t.Fatal("secure-mode grant must be immediate")
	}
	// Voltage must not move for the grant.
	q.RunUntil(before.Add(50 * units.Microsecond))
	if p.Voltage(0, q.Now()) != vSecure {
		t.Fatal("secure-mode grant must not trigger a transition")
	}
}

func TestSecureModeBlocksDecayRetarget(t *testing.T) {
	p, q, _ := newTestPMU(t, testConfig(), 1)
	p.SetSecure(true)
	q.RunUntil(units.Time(200 * units.Microsecond))
	v := p.Voltage(0, q.Now())
	p.RequestLicense(0, isa.Vec256Heavy)
	q.RunUntil(units.Time(2 * units.Millisecond))
	if p.Voltage(0, q.Now()) != v {
		t.Fatal("secure-mode voltage must stay pinned across license decay")
	}
}

func TestPerCoreVRIndependentTransitions(t *testing.T) {
	cfg := testConfig()
	cfg.PerCoreVR = true
	cfg.VR = pdn.DefaultConfig(pdn.LDO)
	p, q, cores := newTestPMU(t, cfg, 2)
	cores[0].busy, cores[1].busy = true, true
	cores[0].active, cores[1].active = isa.Vec256Heavy, isa.Vec256Heavy
	p.RequestLicense(0, isa.Vec256Heavy)
	p.RequestLicense(1, isa.Vec256Heavy)
	if p.Stats().SerializedWaits != 0 {
		t.Fatal("per-core VRs must not serialize across cores")
	}
	q.RunUntil(units.Time(100 * units.Microsecond))
	if len(cores[0].granted) != 1 || len(cores[1].granted) != 1 {
		t.Fatal("grants missing")
	}
	// Each core's guardband covers only its own load: equal targets.
	if p.TargetVoltage(0) != p.TargetVoltage(1) {
		t.Fatal("symmetric loads must produce symmetric per-core targets")
	}
}

func TestSetRequestedFrequency(t *testing.T) {
	p, q, cores := newTestPMU(t, testConfig(), 2)
	p.SetRequestedFrequency(1.2 * units.GHz)
	q.RunUntil(units.Time(300 * units.Microsecond))
	if p.Frequency() != 1.2*units.GHz {
		t.Fatalf("downshift to 1.2 GHz failed: %v", p.Frequency())
	}
	if cores[0].freq != 1.2*units.GHz {
		t.Fatal("cores not told about the new frequency")
	}
	p.SetRequestedFrequency(2.2 * units.GHz)
	q.RunUntil(q.Now().Add(2 * units.Millisecond))
	if p.Frequency() != 2.2*units.GHz {
		t.Fatalf("restore to 2.2 GHz failed: %v", p.Frequency())
	}
}

func TestConfigValidation(t *testing.T) {
	bad := testConfig()
	bad.LicenseHysteresis = 0
	if _, err := New(bad, sched.NewQueue()); err == nil {
		t.Fatal("zero hysteresis accepted")
	}
	bad = testConfig()
	bad.FreqStep = 0
	if _, err := New(bad, sched.NewQueue()); err == nil {
		t.Fatal("zero freq step accepted")
	}
	if _, err := New(testConfig(), nil); err == nil {
		t.Fatal("nil queue accepted")
	}
}

func TestLifecycleErrors(t *testing.T) {
	q := sched.NewQueue()
	p, err := New(testConfig(), q)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Initialize(); err == nil {
		t.Fatal("Initialize before AttachCores accepted")
	}
	if err := p.AttachCores(nil); err == nil {
		t.Fatal("empty core list accepted")
	}
	fakes := []Core{&fakeCore{}}
	if err := p.AttachCores(fakes); err != nil {
		t.Fatal(err)
	}
	if err := p.Initialize(); err != nil {
		t.Fatal(err)
	}
	if err := p.Initialize(); err == nil {
		t.Fatal("double Initialize accepted")
	}
	if err := p.AttachCores(fakes); err == nil {
		t.Fatal("AttachCores after Initialize accepted")
	}
}

func TestUseBeforeInitializePanics(t *testing.T) {
	q := sched.NewQueue()
	p, _ := New(testConfig(), q)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.RequestLicense(0, isa.Vec256Heavy)
}
