// Command scenarios demonstrates the declarative Scenario API: it loads
// the checked-in spec file sweeping the cross-core channel over all four
// processor profiles × {no mitigation, per-core VRs}, executes the
// whole sweep as one parallel batch via RunScenarios, and prints a
// comparison table — the Table-1-style view, but assembled from
// pure-JSON specs instead of bespoke Go call paths.
//
// The same spec file runs unchanged from the CLI
// (ichannels scenario run examples/scenarios/specs/crosscore_mitigations.json)
// and over HTTP (POST /v1/scenarios).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"

	"ichannels"
)

func main() {
	spec := flag.String("spec", "examples/scenarios/specs/crosscore_mitigations.json", "scenario spec file (JSON array)")
	seed := flag.Int64("seed", 1, "base seed for scenarios that pin none")
	flag.Parse()

	data, err := os.ReadFile(*spec)
	if err != nil {
		log.Fatal(err)
	}
	var specs []ichannels.Scenario
	if err := json.Unmarshal(data, &specs); err != nil {
		log.Fatal(err)
	}

	batch, err := ichannels.RunScenarios(context.Background(), ichannels.ScenarioBatchOptions{
		Scenarios: specs, BaseSeed: *seed, Parallel: runtime.GOMAXPROCS(0),
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("IccCoresCovert under mitigation, %d scenarios in one batch:\n\n", len(batch.Results))
	if err := batch.WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// Pivot: one row per processor, the per-core-VR defense against the
	// unmitigated channel.
	type cell struct {
		ber, bps float64
		verdict  string
	}
	pivot := map[string]map[string]cell{}
	var procs []string
	for _, r := range batch.Results {
		if r.Err != nil {
			log.Fatalf("%s: %v", r.Scenario.Describe(), r.Err)
		}
		p := r.Result.Processor
		if pivot[p] == nil {
			pivot[p] = map[string]cell{}
			procs = append(procs, p)
		}
		pivot[p][r.Result.Mitigation] = cell{r.Result.BER, r.Result.ThroughputBPS, r.Result.Verdict}
	}
	fmt.Printf("\n%-14s  %-34s  %-34s\n", "processor", "no mitigation", "per-core VRs")
	fmt.Printf("%-14s  %-34s  %-34s\n", "---------", "-------------", "------------")
	for _, p := range procs {
		none, vr := pivot[p]["none"], pivot[p]["percore-vr"]
		fmt.Printf("%-14s  %-34s  %-34s\n", p,
			fmt.Sprintf("%s (BER %.3f, %.0f b/s)", none.verdict, none.ber, none.bps),
			fmt.Sprintf("%s (BER %.3f, %.0f b/s)", vr.verdict, vr.ber, vr.bps))
	}
	fmt.Println("\npaper §7 / Table 1: per-core VRs remove the cross-core serialization side-effect,")
	fmt.Println("so IccCoresCovert collapses while the unmitigated channel decodes error-free.")
}
