// Exfiltrate: the paper's full attacker model (§4) under realistic system
// noise. A sender process with access to a secret but no overt channel
// moves it to a receiver process over each of the three IChannels
// variants, wrapping the payload in Hamming(7,4)+CRC framing (§6.3) so
// interrupt- and context-switch-induced bit errors are corrected.
package main

import (
	"fmt"
	"log"

	"ichannels"
)

func main() {
	secret := []byte("k=0xDEADBEEF")
	proc := ichannels.CannonLake8121U()

	kinds := []ichannels.ChannelKind{ichannels.SameThread, ichannels.SMT, ichannels.CrossCore}
	for _, kind := range kinds {
		m, err := ichannels.NewMachine(ichannels.MachineOptions{
			Processor: proc,
			// A "noisy" client system: 1000 interrupts/s, 200 context
			// switches/s, imperfect rdtsc.
			Noise:           ichannels.NoiseWithRates(1000, 200),
			TSCJitterCycles: 250,
			Seed:            7,
		})
		if err != nil {
			log.Fatal(err)
		}
		ch, err := ichannels.NewChannel(m, ichannels.DefaultChannelParams(kind, proc))
		if err != nil {
			log.Fatal(err)
		}
		if _, err := ch.Calibrate(8); err != nil {
			log.Fatalf("%v: calibration failed: %v", kind, err)
		}

		frame, err := ichannels.EncodeFrame(secret, 7)
		if err != nil {
			log.Fatal(err)
		}
		// The paper's §6.3 noise recovery: the sender retransmits the
		// frame until the receiver's CRC validates it.
		var (
			payload   []byte
			corrected int
			res       *ichannels.TransmitResult
			attempts  int
		)
		for attempts = 1; attempts <= 5; attempts++ {
			res, err = ch.Transmit(frame)
			if err != nil {
				log.Fatal(err)
			}
			payload, corrected, err = ichannels.DecodeFrame(res.DecodedBits, 7)
			if err == nil {
				break
			}
		}
		status := "RECOVERED"
		if err != nil {
			status = "LOST (" + err.Error() + ")"
			payload = nil
		}
		fmt.Printf("%-16s %4d bits  raw %.0f b/s  BER %.4f  ECC fixed %d  attempts %d  → %s %q\n",
			kind, len(frame), res.ThroughputBPS, res.BER, corrected, attempts, status, string(payload))
	}
}
