// Sidechannel: the §6.5 attack — no cooperating sender. A spy process on
// an SMT sibling (and then on another core) infers which instruction
// widths a victim workload is executing, purely from the throttling
// periods the spy itself experiences.
package main

import (
	"fmt"
	"log"

	"ichannels"
)

func run(kind ichannels.ChannelKind, label string) {
	proc := ichannels.CannonLake8121U()
	m, err := ichannels.NewMachine(ichannels.MachineOptions{Processor: proc, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	spy, err := ichannels.NewSpy(m, kind)
	if err != nil {
		log.Fatal(err)
	}
	if err := spy.Calibrate(6); err != nil {
		log.Fatal(err)
	}

	// The victim: a mixed workload phase sequence (e.g. a crypto library
	// alternating scalar control flow with vectorized arithmetic).
	victim := []ichannels.Class{
		ichannels.Scalar64, ichannels.Vec128Heavy, ichannels.Vec128Heavy,
		ichannels.Vec256Heavy, ichannels.Scalar64, ichannels.Vec512Heavy,
		ichannels.Vec512Heavy, ichannels.Vec256Heavy, ichannels.Scalar64,
		ichannels.Vec128Heavy, ichannels.Vec512Heavy, ichannels.Scalar64,
	}
	res, err := spy.Infer(victim)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: inferred victim instruction widths with %.0f%% accuracy\n", label, res.Accuracy*100)
	fmt.Println("  confusion matrix (rows: actual, cols: inferred; order 64/128/256/512):")
	for _, row := range res.Confusion {
		fmt.Printf("    %v\n", row)
	}
}

func main() {
	run(ichannels.SMT, "Multi-Throttling-SMT spy (same core, sibling thread)")
	run(ichannels.CrossCore, "Multi-Throttling-Cores spy (different core)")
	fmt.Println("\nan attacker learns the victim's instruction mix — the building block for fingerprinting crypto and ML workloads")
}
