// Quickstart: build a simulated Cannon Lake machine, establish the
// cross-core IChannels covert channel, and move one byte between two
// processes that share nothing but the voltage regulator.
package main

import (
	"fmt"
	"log"

	"ichannels"
)

func main() {
	proc := ichannels.CannonLake8121U()
	m, err := ichannels.NewMachine(ichannels.MachineOptions{
		Processor: proc,
		Seed:      42,
	})
	if err != nil {
		log.Fatal(err)
	}

	// IccCoresCovert: sender on core 0, receiver on core 1, communicating
	// through the serialized voltage transitions of the shared VR.
	ch, err := ichannels.NewChannel(m, ichannels.DefaultChannelParams(ichannels.CrossCore, proc))
	if err != nil {
		log.Fatal(err)
	}

	// The receiver first learns the four throttling-period ranges.
	cal, err := ch.Calibrate(8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("calibrated %s: per-level receiver readings %v cycles\n",
		"IccCoresCovert", cal.MeanCycles)

	// Send the secret byte 0xA5, two bits per transaction.
	secret := byte(0xA5)
	bits := make([]int, 8)
	for i := 0; i < 8; i++ {
		bits[i] = int(secret>>(7-i)) & 1
	}
	res, err := ch.Transmit(bits)
	if err != nil {
		log.Fatal(err)
	}

	var got byte
	for i, b := range res.DecodedBits {
		got |= byte(b) << (7 - i)
	}
	fmt.Printf("sent 0x%02X → received 0x%02X in %v (%.0f b/s, BER %.3f)\n",
		secret, got, res.Elapsed, res.ThroughputBPS, res.BER)
	if got != secret {
		log.Fatal("covert transfer corrupted")
	}
	fmt.Println("covert transfer OK")
}
