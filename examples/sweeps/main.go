// Command sweeps demonstrates the Sweep API: one declarative JSON spec
// expands into the paper's Table-6-style grid — every processor ×
// channel kind × mitigation × payload size, 88 cells after the filters
// drop the SMT cells on the HT-less Coffee Lake part — runs through the
// bounded-memory streaming engine, and reduces on the fly into a
// processor × mitigation aggregate table.
//
// The same spec file runs unchanged from the CLI
// (ichannels sweep run examples/sweeps/specs/table6_processor_mitigation.json)
// and over HTTP (POST /v1/sweeps), with byte-identical aggregate
// output.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"

	"ichannels"
)

func main() {
	spec := flag.String("spec", "examples/sweeps/specs/table6_processor_mitigation.json", "sweep spec file (JSON object)")
	seed := flag.Int64("seed", 1, "base seed for cells that pin none")
	flag.Parse()

	data, err := os.ReadFile(*spec)
	if err != nil {
		log.Fatal(err)
	}
	sw, err := ichannels.ParseSweepSpec(data)
	if err != nil {
		log.Fatal(err)
	}

	cells, err := ichannels.ExpandSweep(sw)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s expands to %d cells (hash %s); first and last:\n  %s\n  %s\n\n",
		*spec, len(cells), sw.Hash(),
		cells[0].Scenario.Name, cells[len(cells)-1].Scenario.Name)

	// Stream the grid: cells complete through the worker pool in
	// expansion order with O(workers) memory, the aggregator folding
	// each one in as it lands.
	done := 0
	res, err := ichannels.RunSweep(context.Background(), sw, ichannels.SweepOptions{
		BaseSeed: *seed,
		Parallel: runtime.GOMAXPROCS(0),
		OnCell: func(o ichannels.SweepCellOutcome) error {
			done++
			if done%24 == 0 {
				fmt.Fprintf(os.Stderr, "  …%d/%d cells\n", done, len(cells))
			}
			return nil
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	if res.Failed > 0 {
		log.Fatalf("%d cells failed", res.Failed)
	}

	fmt.Printf("aggregate over %d cells (group by %v):\n\n", len(res.Cells), res.Aggregate.GroupBy)
	if err := res.Aggregate.WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\npaper §7 / Table 1, grid-shaped: per-core VRs and secure mode push the")
	fmt.Println("channels' BER toward 0.5 (mitigated) on every part, while the unmitigated")
	fmt.Println("rows decode with low error on all four processors.")
}
