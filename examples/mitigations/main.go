// Mitigations: reproduce the paper's Table 1 interactively — attack a
// machine configured with each of the three defenses and watch which
// channels survive.
package main

import (
	"fmt"
	"log"

	"ichannels"
)

func main() {
	proc := ichannels.CannonLake8121U()
	mitigations := []ichannels.Mitigation{
		ichannels.NoMitigation, ichannels.PerCoreVR,
		ichannels.ImprovedThrottling, ichannels.SecureMode,
	}
	channels := []ichannels.ChannelKind{
		ichannels.SameThread, ichannels.SMT, ichannels.CrossCore,
	}

	fmt.Printf("%-20s %-16s %8s %12s  %s\n", "mitigation", "channel", "BER", "goodput", "verdict")
	for _, mk := range mitigations {
		for _, ck := range channels {
			a, err := ichannels.EvaluateMitigation(mk, ck, proc, 96, 5)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-20s %-16s %8.3f %9.0f b/s  %s\n",
				mk, ck, a.BER, a.EffectiveBPS, a.Verdict)
		}
		fmt.Println()
	}
	fmt.Println("expected (paper Table 1): per-core VR → partial/partial/mitigated;")
	fmt.Println("improved throttling → kills only IccSMTcovert; secure mode → kills all three")
}
