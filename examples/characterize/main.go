// Characterize: the paper's §5 methodology as a library user would apply
// it to a new part — sweep the instruction classes, measure throttling
// periods and voltage steps with the NI-DAQ-style recorder, and print the
// multi-level structure that makes the covert channels possible.
package main

import (
	"fmt"
	"log"

	"ichannels"
)

// probe runs one burst of a class on core 0 and reports the throttling
// period the core experienced plus the regulator's voltage step.
func probe(proc ichannels.Processor, cls ichannels.Class, freq float64) (tpUS, dvMV float64, err error) {
	m, err := ichannels.NewMachine(ichannels.MachineOptions{
		Processor:     proc,
		RequestedFreq: ichannels.GHz * ichannels.Hertz(freq),
		Cores:         1,
		Seed:          1,
	})
	if err != nil {
		return 0, 0, err
	}
	rec, err := ichannels.NewRecorder(m, 100*ichannels.Nanosecond)
	if err != nil {
		return 0, 0, err
	}
	rec.Start()

	done := false
	agent := ichannels.AgentFunc{AgentName: "probe", Fn: func(env *ichannels.AgentEnv, prev *ichannels.Result) ichannels.Action {
		if prev == nil {
			return ichannels.Exec(ichannels.KernelFor(cls), 150)
		}
		done = true
		return ichannels.StopAction()
	}}
	if _, err := m.Bind(0, 0, agent); err != nil {
		return 0, 0, err
	}
	m.RunFor(300 * ichannels.Microsecond)
	rec.Stop()
	if !done {
		return 0, 0, fmt.Errorf("probe did not finish")
	}
	tp := m.Cores[0].ThrottleTime(m.Now())
	return tp.Microseconds(), rec.MaxVccDelta(), nil
}

func main() {
	proc := ichannels.CannonLake8121U()
	fmt.Printf("characterizing %s (%s) — Fig. 10(a)-style sweep\n\n", proc.Name, proc.CodeName)
	fmt.Printf("%-12s %12s %12s %12s %12s\n", "class", "TP@1.0GHz", "TP@1.4GHz", "ΔV@1.0GHz", "ΔV@1.4GHz")

	classes := []ichannels.Class{
		ichannels.Scalar64, ichannels.Vec128Light, ichannels.Vec128Heavy,
		ichannels.Vec256Light, ichannels.Vec256Heavy, ichannels.Vec512Light,
		ichannels.Vec512Heavy,
	}
	for _, cls := range classes {
		tp10, dv10, err := probe(proc, cls, 1.0)
		if err != nil {
			log.Fatal(err)
		}
		tp14, dv14, err := probe(proc, cls, 1.4)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12v %9.1f µs %9.1f µs %9.1f mV %9.1f mV\n", cls, tp10, tp14, dv10, dv14)
	}
	fmt.Println("\nthe discretized TP levels (L1–L5) are the covert channel's symbol alphabet")
}
