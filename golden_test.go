package ichannels_test

// Golden-file regression tests: the quickstart scenario's result
// envelope and the 88-cell Table-6 sweep aggregate are checked in under
// testdata/golden/ and compared byte for byte, so any drift in the wire
// format (field renames, ordering, float formatting, simulation-output
// changes) fails loudly instead of silently invalidating stored
// corpora. Regenerate intentionally with:
//
//	go test -run TestGolden . -update

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"ichannels"
)

var update = flag.Bool("update", false, "rewrite golden files with the current output")

// compareGolden asserts got matches the checked-in golden file (or
// rewrites it under -update).
func compareGolden(t *testing.T, path string, got []byte) {
	t.Helper()
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v — run `go test -run TestGolden . -update` to create it", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("output drifted from %s — if the wire-format change is intentional, "+
			"regenerate with `go test -run TestGolden . -update` and review the diff\n--- got ---\n%s\n--- want ---\n%s",
			path, got, want)
	}
}

// indented marshals v the way the golden files store it (readable
// diffs; compaction-free byte comparison).
func indented(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(b, '\n')
}

// TestGoldenQuickstartResult pins the full result envelope of the
// checked-in quickstart scenario (pinned seed 7).
func TestGoldenQuickstartResult(t *testing.T) {
	data, err := os.ReadFile("examples/scenarios/specs/quickstart.json")
	if err != nil {
		t.Fatal(err)
	}
	specs, _, err := ichannels.ParseScenarioSpecs(data)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ichannels.RunScenario(context.Background(), specs[0])
	if err != nil {
		t.Fatal(err)
	}
	compareGolden(t, filepath.Join("testdata", "golden", "quickstart_result.json"), indented(t, res))
}

// TestGoldenTable6Aggregate pins the grouped aggregate of the
// checked-in 88-cell Table-6 sweep at base seed 1 — the repository's
// headline table shape.
func TestGoldenTable6Aggregate(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("examples", "sweeps", "specs", "table6_processor_mitigation.json"))
	if err != nil {
		t.Fatal(err)
	}
	sw, err := ichannels.ParseSweepSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ichannels.RunSweep(context.Background(), sw, ichannels.SweepOptions{BaseSeed: 1, Parallel: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 88 || res.Failed != 0 {
		t.Fatalf("table6 grid ran %d cells (%d failed), want 88/0", len(res.Cells), res.Failed)
	}
	compareGolden(t, filepath.Join("testdata", "golden", "table6_aggregate.json"), indented(t, res.Aggregate))
}

// TestGoldenCrossFamily pins the result envelopes of one retire and one
// clockmod transmission (the adopted channel families) and the grouped
// aggregate of the 20-cell cross-family sweep — every kind × every
// mitigation — at base seed 1. Any drift in the new families' decode or
// their wire format fails here byte for byte.
func TestGoldenCrossFamily(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("examples", "scenarios", "specs", "crossfamily.json"))
	if err != nil {
		t.Fatal(err)
	}
	specs, _, err := ichannels.ParseScenarioSpecs(data)
	if err != nil {
		t.Fatal(err)
	}
	results := make([]*ichannels.ScenarioResult, len(specs))
	for i, s := range specs {
		if results[i], err = ichannels.RunScenario(context.Background(), s); err != nil {
			t.Fatalf("%s: %v", s.Describe(), err)
		}
	}
	compareGolden(t, filepath.Join("testdata", "golden", "crossfamily_results.json"), indented(t, results))

	sweepData, err := os.ReadFile(filepath.Join("examples", "sweeps", "specs", "crossfamily_kind_mitigation.json"))
	if err != nil {
		t.Fatal(err)
	}
	sw, err := ichannels.ParseSweepSpec(sweepData)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ichannels.RunSweep(context.Background(), sw, ichannels.SweepOptions{BaseSeed: 1, Parallel: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 20 || res.Failed != 0 {
		t.Fatalf("cross-family grid ran %d cells (%d failed), want 20/0", len(res.Cells), res.Failed)
	}
	compareGolden(t, filepath.Join("testdata", "golden", "crossfamily_aggregate.json"), indented(t, res.Aggregate))
}

// TestGoldenFig14RefinedAggregate pins the adaptive noise sweep's
// aggregate and refinement record at base seed 1 — both the wire shape
// of the refined trailing envelope and the controller's deterministic
// cell selection (which pass computed what) are covered.
func TestGoldenFig14RefinedAggregate(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("examples", "sweeps", "specs", "fig14_noise_refined.json"))
	if err != nil {
		t.Fatal(err)
	}
	sw, err := ichannels.ParseSweepSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ichannels.RefineSweep(context.Background(), sw, ichannels.SweepOptions{BaseSeed: 1, Parallel: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 0 {
		t.Fatalf("%d cells failed", res.Failed)
	}
	envelope := struct {
		Aggregate  *ichannels.SweepTable           `json:"aggregate"`
		Refinement *ichannels.SweepRefinementStats `json:"refinement"`
	}{res.Aggregate, res.Refinement}
	compareGolden(t, filepath.Join("testdata", "golden", "fig14_refined_aggregate.json"), indented(t, envelope))
}
