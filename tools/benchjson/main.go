// Command benchjson converts `go test -bench` output (stdin) into a
// JSON document (stdout) mapping each benchmark to its iteration count,
// ns/op, B/op, allocs/op, and any custom b.ReportMetric metrics — the
// machine-readable form CI archives so the perf trajectory of the hot
// paths is diffable across PRs — and compares two such snapshots.
//
// Usage:
//
//	go test -bench . -benchmem -run '^$' . | go run ./tools/benchjson > BENCH_PR8.json
//	go run ./tools/benchjson compare [-threshold PCT] [-json] [-fail [-match REGEX]] BENCH_PR3.json BENCH_PR8.json
//	go run ./tools/benchjson trend [-threshold PCT] [-json] BENCH_PR3.json BENCH_PR5.json BENCH_PR8.json
//
// compare diffs one snapshot pair; trend fits a per-step slope across
// N snapshots (oldest first) so slow drifts surface, not just step
// regressions. Both are report-only by default: they print movements
// beyond the threshold and exit non-zero only when a snapshot is
// unreadable. compare -fail turns regressions (optionally restricted
// to benchmarks matching -match) into a hard non-zero exit — the gate
// CI runs against the committed baseline so a figure benchmark can
// never quietly fall behind it.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Entry is one benchmark's parsed result line.
type Entry struct {
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op,omitempty"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// procSuffix is the "-N" decoration the testing package appends to
// benchmark names when GOMAXPROCS != 1. Only that exact suffix is
// stripped — sub-benchmark names that legitimately end in "-8"
// (e.g. "parallel-8") survive. benchjson assumes it runs on the machine
// that produced the bench output, which is how CI pipes it.
var procSuffix = fmt.Sprintf("-%d", runtime.GOMAXPROCS(0))

func main() {
	if len(os.Args) > 1 && os.Args[1] == "compare" {
		if err := runCompare(os.Args[2:], os.Stdout, os.Stderr); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "trend" {
		if err := runTrend(os.Args[2:], os.Stdout, os.Stderr); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}
	out := map[string]*Entry{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(nil, 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		name := fields[0]
		if runtime.GOMAXPROCS(0) != 1 {
			name = strings.TrimSuffix(name, procSuffix)
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		e := &Entry{Iterations: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				e.NsPerOp = v
			case "B/op":
				e.BytesPerOp = v
			case "allocs/op":
				e.AllocsPerOp = v
			case "MB/s":
				e.metric("mb_per_s", v)
			default:
				e.metric(unit, v)
			}
		}
		out[name] = e
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(out) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	names := make([]string, 0, len(out))
	for n := range out {
		names = append(names, n)
	}
	sort.Strings(names)
	// Emit in sorted order (json.Marshal sorts map keys, so one
	// top-level map keeps the file diffable).
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d benchmarks (%s … %s)\n", len(names), names[0], names[len(names)-1])
}

func (e *Entry) metric(name string, v float64) {
	if e.Metrics == nil {
		e.Metrics = map[string]float64{}
	}
	e.Metrics[name] = v
}
