package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
)

// Delta is one metric's movement between two snapshots of the same
// benchmark. FromZero marks a metric whose baseline was zero (or
// absent — a zero-alloc benchmark and one measured without -benchmem
// serialize identically), so no percentage exists: any nonzero new
// value is reported as a regression rather than silently skipped.
type Delta struct {
	Name     string  `json:"name"`
	Metric   string  `json:"metric"`
	Old      float64 `json:"old"`
	New      float64 `json:"new"`
	Pct      float64 `json:"pct"`
	FromZero bool    `json:"from_zero,omitempty"`
}

// CompareReport classifies every benchmark shared by two snapshots.
// It is report-only by design (the ROADMAP's fail-soft perf
// trajectory): CI prints it into the log so regressions surface in
// review, but a noisy runner cannot fail the build.
type CompareReport struct {
	Compared     int      `json:"compared"`
	ThresholdPct float64  `json:"threshold_pct"`
	Regressions  []Delta  `json:"regressions,omitempty"`
	Improvements []Delta  `json:"improvements,omitempty"`
	Added        []string `json:"added,omitempty"`
	Removed      []string `json:"removed,omitempty"`
}

// compareMetrics are the per-op costs worth trending. Custom
// b.ReportMetric values (BER, throughput, gaps) are simulation outputs,
// not costs — the golden files guard those.
var compareMetrics = []struct {
	name string
	get  func(*Entry) float64
}{
	{"ns/op", func(e *Entry) float64 { return e.NsPerOp }},
	{"B/op", func(e *Entry) float64 { return e.BytesPerOp }},
	{"allocs/op", func(e *Entry) float64 { return e.AllocsPerOp }},
}

// compareEntries classifies the movement of every shared benchmark:
// a metric moving up by at least thresholdPct percent is a regression,
// down by at least that much an improvement. Benchmarks present in only
// one snapshot are listed, not judged.
func compareEntries(old, new map[string]*Entry, thresholdPct float64) *CompareReport {
	rep := &CompareReport{ThresholdPct: thresholdPct}
	names := make([]string, 0, len(old))
	for n := range old {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		ne, ok := new[n]
		if !ok {
			rep.Removed = append(rep.Removed, n)
			continue
		}
		rep.Compared++
		for _, m := range compareMetrics {
			ov, nv := m.get(old[n]), m.get(ne)
			if ov <= 0 {
				// Zero/absent baseline: no ratio, but 0 -> N is the
				// exact regression class the tool exists to catch
				// (e.g. a zero-alloc hot path growing allocations).
				if nv > 0 {
					rep.Regressions = append(rep.Regressions,
						Delta{Name: n, Metric: m.name, Old: ov, New: nv, FromZero: true})
				}
				continue
			}
			pct := (nv - ov) / ov * 100
			d := Delta{Name: n, Metric: m.name, Old: ov, New: nv, Pct: pct}
			switch {
			case pct >= thresholdPct:
				rep.Regressions = append(rep.Regressions, d)
			case pct <= -thresholdPct:
				rep.Improvements = append(rep.Improvements, d)
			}
		}
	}
	added := make([]string, 0)
	for n := range new {
		if _, ok := old[n]; !ok {
			added = append(added, n)
		}
	}
	sort.Strings(added)
	rep.Added = added
	return rep
}

// loadEntries reads one benchjson snapshot file.
func loadEntries(path string) (map[string]*Entry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	out := map[string]*Entry{}
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks in snapshot", path)
	}
	return out, nil
}

// writeCompare renders the report for humans (CI logs).
func writeCompare(w io.Writer, oldPath, newPath string, rep *CompareReport) {
	fmt.Fprintf(w, "benchjson compare: %s -> %s (%d shared benchmarks, threshold ±%.0f%%)\n",
		oldPath, newPath, rep.Compared, rep.ThresholdPct)
	section := func(label string, ds []Delta) {
		if len(ds) == 0 {
			return
		}
		fmt.Fprintf(w, "%s:\n", label)
		for _, d := range ds {
			change := fmt.Sprintf("%+7.1f%%", d.Pct)
			if d.FromZero {
				change = "was 0/unmeasured"
			}
			fmt.Fprintf(w, "  %-44s %-10s %14.1f -> %14.1f  %s\n",
				d.Name, d.Metric, d.Old, d.New, change)
		}
	}
	section("REGRESSIONS", rep.Regressions)
	section("improvements", rep.Improvements)
	if len(rep.Added) > 0 {
		fmt.Fprintf(w, "added: %v\n", rep.Added)
	}
	if len(rep.Removed) > 0 {
		fmt.Fprintf(w, "removed: %v\n", rep.Removed)
	}
	if len(rep.Regressions) == 0 {
		fmt.Fprintln(w, "no regressions above threshold")
	}
}

// runCompare implements `benchjson compare old.json new.json`. By
// default the error return covers unusable inputs only — regressions
// never fail the run (report-only). With -fail, regressions whose
// benchmark name matches -match (default: every benchmark) turn the
// exit status hard: CI uses it to enforce that the figure benchmarks
// never fall behind a committed baseline.
func runCompare(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("benchjson compare", flag.ContinueOnError)
	fs.SetOutput(stderr)
	threshold := fs.Float64("threshold", 10, "report metrics that moved by at least this percent")
	jsonOut := fs.Bool("json", false, "emit the report as JSON instead of text")
	failOn := fs.Bool("fail", false, "exit non-zero when regressions are found (hard gate)")
	match := fs.String("match", "", "with -fail, only regressions in benchmarks matching this regexp are fatal")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("usage: benchjson compare [-threshold PCT] [-json] [-fail [-match REGEX]] old.json new.json")
	}
	if *threshold <= 0 {
		return fmt.Errorf("threshold must be positive, got %v", *threshold)
	}
	var matchRE *regexp.Regexp
	if *match != "" {
		var err error
		if matchRE, err = regexp.Compile(*match); err != nil {
			return fmt.Errorf("bad -match regexp: %w", err)
		}
	}
	oldPath, newPath := fs.Arg(0), fs.Arg(1)
	oldE, err := loadEntries(oldPath)
	if err != nil {
		return err
	}
	newE, err := loadEntries(newPath)
	if err != nil {
		return err
	}
	rep := compareEntries(oldE, newE, *threshold)
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return err
		}
	} else {
		writeCompare(stdout, oldPath, newPath, rep)
	}
	if *failOn {
		fatal := 0
		for _, d := range rep.Regressions {
			if matchRE == nil || matchRE.MatchString(d.Name) {
				fatal++
			}
		}
		if fatal > 0 {
			return fmt.Errorf("%d regression(s) beyond ±%.0f%% vs %s", fatal, *threshold, oldPath)
		}
	}
	return nil
}
