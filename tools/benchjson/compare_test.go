package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func fixture(name string) string { return filepath.Join("testdata", name) }

// TestCompareEntriesClassification: the fixture pair encodes one ns/op
// regression (+40%), one zero-baseline allocs/op regression (0 -> 5),
// one allocs/op improvement (-40%) alongside an ns/op improvement
// (-25%), one stable benchmark, one added and one removed.
func TestCompareEntriesClassification(t *testing.T) {
	oldE, err := loadEntries(fixture("old.json"))
	if err != nil {
		t.Fatal(err)
	}
	newE, err := loadEntries(fixture("new.json"))
	if err != nil {
		t.Fatal(err)
	}
	rep := compareEntries(oldE, newE, 10)
	if rep.Compared != 4 {
		t.Errorf("compared %d benchmarks, want 4", rep.Compared)
	}
	if len(rep.Regressions) != 2 {
		t.Fatalf("regressions %+v, want RunScenario ns/op and ZeroAlloc allocs/op", rep.Regressions)
	}
	r := rep.Regressions[0]
	if r.Name != "BenchmarkRunScenario" || r.Metric != "ns/op" || r.Pct < 39.9 || r.Pct > 40.1 {
		t.Errorf("regression %+v, want BenchmarkRunScenario ns/op +40%%", r)
	}
	z := rep.Regressions[1]
	if z.Name != "BenchmarkZeroAlloc" || z.Metric != "allocs/op" || !z.FromZero || z.New != 5 {
		t.Errorf("regression %+v, want BenchmarkZeroAlloc allocs/op 0 -> 5 flagged from_zero", z)
	}
	if len(rep.Improvements) != 2 {
		t.Fatalf("improvements %+v, want SweepTable6 ns/op and allocs/op", rep.Improvements)
	}
	for _, d := range rep.Improvements {
		if d.Name != "BenchmarkSweepTable6" || d.Pct >= 0 {
			t.Errorf("unexpected improvement %+v", d)
		}
	}
	if len(rep.Added) != 1 || rep.Added[0] != "BenchmarkAdded" {
		t.Errorf("added %v", rep.Added)
	}
	if len(rep.Removed) != 1 || rep.Removed[0] != "BenchmarkRemoved" {
		t.Errorf("removed %v", rep.Removed)
	}

	// A 1000% threshold silences every ratio-based finding; the
	// zero-baseline regression has no ratio and stays visible.
	quiet := compareEntries(oldE, newE, 1000)
	if len(quiet.Regressions) != 1 || !quiet.Regressions[0].FromZero || len(quiet.Improvements) != 0 {
		t.Errorf("threshold 1000%% flags: %+v %+v, want only the from-zero regression", quiet.Regressions, quiet.Improvements)
	}
}

// TestRunCompareReportOnly: regressions print but never fail the run;
// unusable inputs do.
func TestRunCompareReportOnly(t *testing.T) {
	var out, errBuf bytes.Buffer
	err := runCompare([]string{"-threshold", "10", fixture("old.json"), fixture("new.json")}, &out, &errBuf)
	if err != nil {
		t.Fatalf("report-only compare failed: %v", err)
	}
	text := out.String()
	for _, want := range []string{"REGRESSIONS", "BenchmarkRunScenario", "+40.0%", "BenchmarkAdded", "BenchmarkRemoved"} {
		if !strings.Contains(text, want) {
			t.Errorf("report lacks %q:\n%s", want, text)
		}
	}

	if err := runCompare([]string{fixture("old.json")}, &out, &errBuf); err == nil {
		t.Error("one positional arg accepted, want usage error")
	}
	if err := runCompare([]string{fixture("old.json"), fixture("missing.json")}, &out, &errBuf); err == nil {
		t.Error("missing snapshot accepted, want error")
	}
	if err := runCompare([]string{"-threshold", "-5", fixture("old.json"), fixture("new.json")}, &out, &errBuf); err == nil {
		t.Error("negative threshold accepted, want error")
	}
}

// TestRunCompareFail: -fail turns matching regressions into a hard
// non-zero exit; -match scopes which benchmarks can trip it.
func TestRunCompareFail(t *testing.T) {
	var out, errBuf bytes.Buffer
	// The fixture pair has regressions in BenchmarkRunScenario (ns/op)
	// and BenchmarkZeroAlloc (allocs/op from zero) — with -fail both
	// are fatal.
	err := runCompare([]string{"-threshold", "10", "-fail", fixture("old.json"), fixture("new.json")}, &out, &errBuf)
	if err == nil || !strings.Contains(err.Error(), "regression") {
		t.Errorf("-fail on a regressed pair returned %v, want regression error", err)
	}
	// The report still prints before the gate trips.
	if !strings.Contains(out.String(), "REGRESSIONS") {
		t.Errorf("-fail suppressed the report:\n%s", out.String())
	}

	// A -match that selects no regressed benchmark passes.
	if err := runCompare([]string{"-fail", "-match", "^BenchmarkSweepTable6$", fixture("old.json"), fixture("new.json")}, &out, &errBuf); err != nil {
		t.Errorf("-fail with non-matching -match failed: %v", err)
	}
	// A -match that selects a regressed benchmark fails.
	if err := runCompare([]string{"-fail", "-match", "^BenchmarkRunScenario$", fixture("old.json"), fixture("new.json")}, &out, &errBuf); err == nil {
		t.Error("-fail with matching -match passed, want regression error")
	}
	// Bad regexps are usage errors.
	if err := runCompare([]string{"-fail", "-match", "(", fixture("old.json"), fixture("new.json")}, &out, &errBuf); err == nil {
		t.Error("invalid -match regexp accepted, want error")
	}
}

// TestRunCompareJSON: the -json form emits the structured report.
func TestRunCompareJSON(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := runCompare([]string{"-json", fixture("old.json"), fixture("new.json")}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"compared": 4`, `"regressions"`, `"BenchmarkRunScenario"`, `"from_zero": true`} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("JSON report lacks %q:\n%s", want, out.String())
		}
	}
}
