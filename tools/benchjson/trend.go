package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"sort"
)

// Trend is one metric's trajectory across N snapshots of the same
// benchmark. Slope is the least-squares slope per snapshot step,
// expressed as a percentage of the series mean (so a +5 means the
// metric drifts up ~5% of its typical value every PR); LastDeltaPct is
// the plain old→new percentage of the final step — together they
// separate slow drifts from step changes, which is exactly what a
// single-pair compare cannot do.
type Trend struct {
	Name     string    `json:"name"`
	Metric   string    `json:"metric"`
	Values   []float64 `json:"values"`
	Points   int       `json:"points"`
	SlopePct float64   `json:"slope_pct"`
	// LastDeltaPct is 0 when the previous point was zero/unmeasured.
	LastDeltaPct float64 `json:"last_delta_pct"`
}

// TrendReport classifies every (benchmark, metric) series present in
// at least two snapshots. Like compare it is report-only: CI prints it
// so drifts surface in review, but a noisy runner cannot fail a build.
type TrendReport struct {
	Snapshots    []string `json:"snapshots"`
	ThresholdPct float64  `json:"threshold_pct"`
	// Drifts lists series whose |slope| meets the threshold, steepest
	// first; Flat counts the series that did not.
	Drifts []Trend `json:"drifts,omitempty"`
	Flat   int     `json:"flat"`
}

// slopePct fits v = a + b·i by least squares over the snapshot indices
// and normalizes b by the series mean. A constant series (or one with
// mean zero) has slope zero.
func slopePct(vals []float64) float64 {
	n := float64(len(vals))
	var sumI, sumV, sumIV, sumII float64
	for i, v := range vals {
		fi := float64(i)
		sumI += fi
		sumV += v
		sumIV += fi * v
		sumII += fi * fi
	}
	den := n*sumII - sumI*sumI
	mean := sumV / n
	if den == 0 || mean == 0 {
		return 0
	}
	b := (n*sumIV - sumI*sumV) / den
	return b / math.Abs(mean) * 100
}

// trendEntries builds the per-series trajectories from snapshots in
// the given (chronological) order. Series missing from a snapshot are
// carried as gaps: only snapshots that measured the metric contribute
// points, and fewer than two points yields no trend.
func trendEntries(snaps []map[string]*Entry, paths []string, thresholdPct float64) *TrendReport {
	rep := &TrendReport{Snapshots: paths, ThresholdPct: thresholdPct}
	names := map[string]bool{}
	for _, s := range snaps {
		for n := range s {
			names[n] = true
		}
	}
	ordered := make([]string, 0, len(names))
	for n := range names {
		ordered = append(ordered, n)
	}
	sort.Strings(ordered)
	for _, name := range ordered {
		for _, m := range compareMetrics {
			var vals []float64
			for _, s := range snaps {
				e, ok := s[name]
				if !ok {
					continue
				}
				if v := m.get(e); v > 0 {
					vals = append(vals, v)
				}
			}
			if len(vals) < 2 {
				continue
			}
			tr := Trend{
				Name: name, Metric: m.name, Values: vals, Points: len(vals),
				SlopePct: slopePct(vals),
			}
			if prev := vals[len(vals)-2]; prev > 0 {
				tr.LastDeltaPct = (vals[len(vals)-1] - prev) / prev * 100
			}
			if math.Abs(tr.SlopePct) >= thresholdPct {
				rep.Drifts = append(rep.Drifts, tr)
			} else {
				rep.Flat++
			}
		}
	}
	sort.Slice(rep.Drifts, func(i, j int) bool {
		a, b := math.Abs(rep.Drifts[i].SlopePct), math.Abs(rep.Drifts[j].SlopePct)
		if a != b {
			return a > b
		}
		if rep.Drifts[i].Name != rep.Drifts[j].Name {
			return rep.Drifts[i].Name < rep.Drifts[j].Name
		}
		return rep.Drifts[i].Metric < rep.Drifts[j].Metric
	})
	return rep
}

// writeTrend renders the report for humans (CI logs).
func writeTrend(w io.Writer, rep *TrendReport) {
	fmt.Fprintf(w, "benchjson trend: %d snapshots (%s … %s), |slope| ≥ %.0f%%/step\n",
		len(rep.Snapshots), rep.Snapshots[0], rep.Snapshots[len(rep.Snapshots)-1], rep.ThresholdPct)
	if len(rep.Drifts) == 0 {
		fmt.Fprintf(w, "no drifting metrics (%d series flat)\n", rep.Flat)
		return
	}
	for _, d := range rep.Drifts {
		fmt.Fprintf(w, "  %-44s %-10s %+7.1f%%/step  last %+7.1f%%  over %d points\n",
			d.Name, d.Metric, d.SlopePct, d.LastDeltaPct, d.Points)
	}
	fmt.Fprintf(w, "%d drifting series, %d flat\n", len(rep.Drifts), rep.Flat)
}

// runTrend implements `benchjson trend snap1.json ... snapN.json`,
// snapshots oldest first. The error return covers unusable inputs
// only; drifts never fail the run (report-only, like compare).
func runTrend(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("benchjson trend", flag.ContinueOnError)
	fs.SetOutput(stderr)
	threshold := fs.Float64("threshold", 5, "report series whose per-step slope is at least this percent of their mean")
	jsonOut := fs.Bool("json", false, "emit the report as JSON instead of text")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() < 2 {
		return fmt.Errorf("usage: benchjson trend [-threshold PCT] [-json] oldest.json ... newest.json (≥ 2 snapshots)")
	}
	if *threshold <= 0 {
		return fmt.Errorf("threshold must be positive, got %v", *threshold)
	}
	var snaps []map[string]*Entry
	for _, path := range fs.Args() {
		s, err := loadEntries(path)
		if err != nil {
			return err
		}
		snaps = append(snaps, s)
	}
	rep := trendEntries(snaps, fs.Args(), *threshold)
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	writeTrend(stdout, rep)
	return nil
}
