package main

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// snap builds one snapshot fixture.
func snap(entries map[string]Entry) map[string]*Entry {
	out := map[string]*Entry{}
	for n, e := range entries {
		e := e
		out[n] = &e
	}
	return out
}

func TestTrendDetectsSlowDrift(t *testing.T) {
	// +5% ns/op per snapshot: below a 10% pairwise compare threshold at
	// every step, but a clear drift over four points.
	snaps := []map[string]*Entry{
		snap(map[string]Entry{"BenchmarkX": {Iterations: 1, NsPerOp: 100}}),
		snap(map[string]Entry{"BenchmarkX": {Iterations: 1, NsPerOp: 105}}),
		snap(map[string]Entry{"BenchmarkX": {Iterations: 1, NsPerOp: 110}}),
		snap(map[string]Entry{"BenchmarkX": {Iterations: 1, NsPerOp: 115}}),
	}
	rep := trendEntries(snaps, []string{"a", "b", "c", "d"}, 2)
	if len(rep.Drifts) != 1 {
		t.Fatalf("drifts: %+v, want exactly BenchmarkX ns/op", rep.Drifts)
	}
	d := rep.Drifts[0]
	if d.Name != "BenchmarkX" || d.Metric != "ns/op" || d.Points != 4 {
		t.Fatalf("drift identity wrong: %+v", d)
	}
	// Perfectly linear series: slope 5/mean(107.5) ≈ 4.65%/step.
	if math.Abs(d.SlopePct-5/107.5*100) > 1e-9 {
		t.Errorf("slope %.4f%%, want %.4f%%", d.SlopePct, 5/107.5*100)
	}
	if math.Abs(d.LastDeltaPct-(115.0-110)/110*100) > 1e-9 {
		t.Errorf("last delta %.4f%%, want %.4f%%", d.LastDeltaPct, (115.0-110)/110*100)
	}
}

func TestTrendFlatAndNoiseStayQuiet(t *testing.T) {
	// A flat series and a zero-mean (unmeasured) metric produce no
	// drift rows; alternating noise has near-zero slope.
	snaps := []map[string]*Entry{
		snap(map[string]Entry{"BenchmarkFlat": {NsPerOp: 100, AllocsPerOp: 7}, "BenchmarkNoise": {NsPerOp: 100}}),
		snap(map[string]Entry{"BenchmarkFlat": {NsPerOp: 100, AllocsPerOp: 7}, "BenchmarkNoise": {NsPerOp: 120}}),
		snap(map[string]Entry{"BenchmarkFlat": {NsPerOp: 100, AllocsPerOp: 7}, "BenchmarkNoise": {NsPerOp: 100}}),
		snap(map[string]Entry{"BenchmarkFlat": {NsPerOp: 100, AllocsPerOp: 7}, "BenchmarkNoise": {NsPerOp: 120}}),
	}
	rep := trendEntries(snaps, []string{"a", "b", "c", "d"}, 5)
	if len(rep.Drifts) != 0 {
		t.Fatalf("unexpected drifts: %+v", rep.Drifts)
	}
	// BenchmarkFlat ns/op + allocs/op, BenchmarkNoise ns/op = 3 series.
	if rep.Flat != 3 {
		t.Errorf("flat series %d, want 3", rep.Flat)
	}
}

func TestTrendHandlesGapsAndNewBenchmarks(t *testing.T) {
	// A benchmark absent from the middle snapshot still trends over its
	// measured points; one present only once yields no series.
	snaps := []map[string]*Entry{
		snap(map[string]Entry{"BenchmarkGap": {NsPerOp: 100}}),
		snap(map[string]Entry{"BenchmarkNew": {NsPerOp: 50}}),
		snap(map[string]Entry{"BenchmarkGap": {NsPerOp: 200}}),
	}
	rep := trendEntries(snaps, []string{"a", "b", "c"}, 5)
	if len(rep.Drifts) != 1 || rep.Drifts[0].Name != "BenchmarkGap" {
		t.Fatalf("drifts: %+v, want BenchmarkGap only", rep.Drifts)
	}
	if rep.Drifts[0].Points != 2 {
		t.Errorf("gap series has %d points, want 2", rep.Drifts[0].Points)
	}
}

func TestTrendSortsSteepestFirst(t *testing.T) {
	snaps := []map[string]*Entry{
		snap(map[string]Entry{"BenchmarkA": {NsPerOp: 100}, "BenchmarkB": {NsPerOp: 100}}),
		snap(map[string]Entry{"BenchmarkA": {NsPerOp: 110}, "BenchmarkB": {NsPerOp: 150}}),
	}
	rep := trendEntries(snaps, []string{"a", "b"}, 1)
	if len(rep.Drifts) != 2 || rep.Drifts[0].Name != "BenchmarkB" {
		t.Fatalf("order wrong: %+v", rep.Drifts)
	}
}

func TestRunTrendEndToEnd(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, entries map[string]*Entry) string {
		path := filepath.Join(dir, name)
		data, err := json.Marshal(entries)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	p1 := write("one.json", snap(map[string]Entry{"BenchmarkX": {Iterations: 1, NsPerOp: 100}}))
	p2 := write("two.json", snap(map[string]Entry{"BenchmarkX": {Iterations: 1, NsPerOp: 140}}))

	var out, errOut bytes.Buffer
	if err := runTrend([]string{"-json", p1, p2}, &out, &errOut); err != nil {
		t.Fatalf("runTrend: %v (stderr: %s)", err, errOut.String())
	}
	var rep TrendReport
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("bad JSON report: %v\n%s", err, out.String())
	}
	if len(rep.Drifts) != 1 || rep.Drifts[0].LastDeltaPct != 40 {
		t.Fatalf("report: %+v", rep)
	}

	out.Reset()
	if err := runTrend([]string{p1, p2}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "BenchmarkX") {
		t.Errorf("text report missing benchmark name:\n%s", out.String())
	}

	// Usable-input errors (too few snapshots, unreadable file) fail;
	// drifts never do — that contract is the fail-soft CI step.
	if err := runTrend([]string{p1}, &out, &errOut); err == nil {
		t.Error("single snapshot should be rejected")
	}
	if err := runTrend([]string{p1, filepath.Join(dir, "missing.json")}, &out, &errOut); err == nil {
		t.Error("unreadable snapshot should be rejected")
	}
}
